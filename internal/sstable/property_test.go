package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fcae/internal/keys"
)

// TestQuickTableRoundTrip: for random sorted key sets, building a table
// and scanning it returns exactly the input (property-based).
func TestQuickTableRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	f := func(seed int64, blockExp uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(400)
		users := map[string]bool{}
		for i := 0; i < n; i++ {
			users[fmt.Sprintf("key-%06d", r.Intn(5000))] = true
		}
		var sorted []string
		for u := range users {
			sorted = append(sorted, u)
		}
		sort.Strings(sorted)

		opts := Options{
			BlockSize:   1 << (6 + blockExp%8), // 64B..8KB blocks
			Compression: SnappyCompression,
		}
		var buf bytes.Buffer
		w := NewWriter(&buf, opts)
		type ent struct{ k, v []byte }
		var want []ent
		for i, u := range sorted {
			ik := keys.MakeInternal(nil, []byte(u), uint64(i+1), keys.KindSet)
			val := make([]byte, r.Intn(200))
			r.Read(val)
			if err := w.Add(ik, val); err != nil {
				return false
			}
			want = append(want, ent{append([]byte(nil), ik...), val})
		}
		if _, err := w.Finish(); err != nil {
			return false
		}
		rd, err := NewReader(memFile(buf.Bytes()), int64(buf.Len()), Options{}, nil, 1)
		if err != nil {
			return false
		}
		it := rd.NewIterator()
		i := 0
		for it.SeekToFirst(); it.Valid(); it.Next() {
			if i >= len(want) || !bytes.Equal(it.Key(), want[i].k) || !bytes.Equal(it.Value(), want[i].v) {
				return false
			}
			i++
		}
		return it.Error() == nil && i == len(want)
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSeekMatchesLinearScan: SeekGE agrees with a linear scan for
// random targets.
func TestQuickSeekMatchesLinearScan(t *testing.T) {
	entries := seqEntries(1000, 30)
	f, _ := buildTable(t, Options{BlockSize: 512, Compression: SnappyCompression}, entries)
	r, err := NewReader(f, int64(len(f)), Options{}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	it := r.NewIterator()
	for trial := 0; trial < 300; trial++ {
		target := []byte(fmt.Sprintf("key%08d", rng.Intn(1200)))
		ik := keys.MakeInternal(nil, target, keys.MaxSeq, keys.KindSet)
		it.SeekGE(ik)
		// Model answer: first entry with user key >= target.
		wantIdx := sort.Search(len(entries), func(i int) bool {
			return entries[i].user >= string(target)
		})
		if wantIdx == len(entries) {
			if it.Valid() {
				t.Fatalf("SeekGE(%q) should be invalid, got %q", target, it.Key())
			}
			continue
		}
		if !it.Valid() || string(keys.UserKey(it.Key())) != entries[wantIdx].user {
			t.Fatalf("SeekGE(%q) = %q, want %q", target, it.Key(), entries[wantIdx].user)
		}
	}
}

// TestQuickPrevNextInverse: Prev undoes Next anywhere in the table.
func TestQuickPrevNextInverse(t *testing.T) {
	entries := seqEntries(500, 40)
	f, _ := buildTable(t, Options{BlockSize: 256}, entries)
	r, err := NewReader(f, int64(len(f)), Options{}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	it := r.NewIterator()
	for trial := 0; trial < 100; trial++ {
		i := rng.Intn(len(entries) - 1)
		ik := keys.MakeInternal(nil, []byte(entries[i].user), keys.MaxSeq, keys.KindSet)
		it.SeekGE(ik)
		if !it.Valid() {
			t.Fatalf("SeekGE(%s) invalid", entries[i].user)
		}
		it.Next()
		if !it.Valid() {
			continue
		}
		it.Prev()
		if !it.Valid() || string(keys.UserKey(it.Key())) != entries[i].user {
			t.Fatalf("Prev(Next(%s)) = %q", entries[i].user, it.Key())
		}
	}
}

func BenchmarkTableBuild(b *testing.B) {
	entries := seqEntries(10000, 100)
	b.SetBytes(int64(10000 * 130))
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := NewWriter(&buf, Options{Compression: SnappyCompression, FilterBitsPerKey: 10})
		for _, e := range entries {
			ik := keys.MakeInternal(nil, []byte(e.user), e.seq, e.kind)
			if err := w.Add(ik, []byte(e.value)); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := w.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableScan(b *testing.B) {
	entries := seqEntries(10000, 100)
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{Compression: SnappyCompression})
	for _, e := range entries {
		ik := keys.MakeInternal(nil, []byte(e.user), e.seq, e.kind)
		w.Add(ik, []byte(e.value))
	}
	w.Finish()
	r, err := NewReader(memFile(buf.Bytes()), int64(buf.Len()), Options{}, nil, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(10000 * 130))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := r.NewIterator()
		n := 0
		for it.SeekToFirst(); it.Valid(); it.Next() {
			n++
		}
		if n != 10000 {
			b.Fatal("short scan")
		}
	}
}

func BenchmarkTableGet(b *testing.B) {
	entries := seqEntries(10000, 100)
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{Compression: SnappyCompression, FilterBitsPerKey: 10})
	for _, e := range entries {
		ik := keys.MakeInternal(nil, []byte(e.user), e.seq, e.kind)
		w.Add(ik, []byte(e.value))
	}
	w.Finish()
	r, err := NewReader(memFile(buf.Bytes()), int64(buf.Len()), Options{}, nil, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := entries[i%len(entries)]
		if _, _, ok, err := r.Get([]byte(e.user), keys.MaxSeq); err != nil || !ok {
			b.Fatal(err)
		}
	}
}
