package sstable

import (
	"fmt"
	"testing"

	"fcae/internal/keys"
)

// A table written with a low bits-per-key must still filter correctly at
// read time: the probe count travels in the stored filter, so the reader
// needs no policy configuration (and must not assume the default 10).
func TestReaderGetFilterBitsPerKey4(t *testing.T) {
	entries := seqEntries(200, 16)
	f, _ := buildTable(t, Options{FilterBitsPerKey: 4}, entries)
	r, err := NewReader(f, int64(len(f)), Options{}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.filter == nil {
		t.Fatal("table built with FilterBitsPerKey=4 has no filter block")
	}
	for _, e := range entries {
		v, deleted, found, err := r.Get([]byte(e.user), keys.MaxSeq)
		if err != nil {
			t.Fatal(err)
		}
		if !found || deleted {
			t.Fatalf("Get(%q): found=%v deleted=%v, want present", e.user, found, deleted)
		}
		if string(v) != e.value {
			t.Fatalf("Get(%q) = %q, want %q", e.user, v, e.value)
		}
	}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("absent%08d", i)
		if _, _, found, err := r.Get([]byte(k), keys.MaxSeq); err != nil {
			t.Fatal(err)
		} else if found {
			t.Fatalf("Get(%q) found a key that was never written", k)
		}
	}
}

// BlockScanner must surface every entry of every data block in table
// order, for both codecs, reusing caller buffers.
func TestBlockScannerWalksAllBlocks(t *testing.T) {
	for _, comp := range []Compression{NoCompression, SnappyCompression} {
		t.Run(fmt.Sprintf("compression=%d", comp), func(t *testing.T) {
			entries := seqEntries(500, 64)
			f, stats := buildTable(t, Options{BlockSize: 512, Compression: comp}, entries)
			r, err := NewReader(f, int64(len(f)), Options{}, nil, 1)
			if err != nil {
				t.Fatal(err)
			}
			if stats.DataBlocks < 4 {
				t.Fatalf("want a multi-block table, got %d blocks", stats.DataBlocks)
			}
			var sc BlockScanner
			var bufs [2]BlockBuf // alternate to prove reuse is safe per-block
			sc.Reset(r)
			var it BlockIter
			first := true
			var got int
			blocks := 0
			for {
				contents, ok, err := sc.Next(&bufs[blocks%2])
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				blocks++
				if first {
					bi, err := NewBlockIter(contents)
					if err != nil {
						t.Fatal(err)
					}
					it = *bi
					first = false
				} else if err := it.Reset(contents); err != nil {
					t.Fatal(err)
				}
				for it.SeekToFirst(); it.Valid(); it.Next() {
					e := entries[got]
					if string(keys.UserKey(it.Key())) != e.user || string(it.Value()) != e.value {
						t.Fatalf("entry %d: got (%q,%q), want (%q,%q)",
							got, keys.UserKey(it.Key()), it.Value(), e.user, e.value)
					}
					got++
				}
				if err := it.Error(); err != nil {
					t.Fatal(err)
				}
			}
			if blocks != stats.DataBlocks {
				t.Fatalf("scanned %d blocks, table has %d", blocks, stats.DataBlocks)
			}
			if got != len(entries) {
				t.Fatalf("scanned %d entries, want %d", got, len(entries))
			}
		})
	}
}
