package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"fcae/internal/cache"
	"fcae/internal/keys"
)

// memFile adapts a byte slice to io.ReaderAt.
type memFile []byte

func (m memFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m)) {
		return 0, fmt.Errorf("read past end")
	}
	n := copy(p, m[off:])
	if n < len(p) {
		return n, fmt.Errorf("short read")
	}
	return n, nil
}

type kv struct {
	user  string
	seq   uint64
	kind  keys.Kind
	value string
}

func buildTable(t *testing.T, opts Options, entries []kv) (memFile, WriterStats) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, opts)
	for _, e := range entries {
		ik := keys.MakeInternal(nil, []byte(e.user), e.seq, e.kind)
		if err := w.Add(ik, []byte(e.value)); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return memFile(buf.Bytes()), stats
}

func seqEntries(n, valueLen int) []kv {
	out := make([]kv, n)
	for i := range out {
		out[i] = kv{
			user:  fmt.Sprintf("key%08d", i),
			seq:   uint64(n - i),
			kind:  keys.KindSet,
			value: fmt.Sprintf("%0*d", valueLen, i),
		}
	}
	return out
}

func TestBuildAndScan(t *testing.T) {
	for _, comp := range []Compression{NoCompression, SnappyCompression} {
		entries := seqEntries(1000, 100)
		f, stats := buildTable(t, Options{Compression: comp, FilterBitsPerKey: 10}, entries)
		if stats.Entries != 1000 {
			t.Fatalf("stats.Entries = %d", stats.Entries)
		}
		if stats.DataBlocks < 10 {
			t.Fatalf("expected multiple data blocks, got %d", stats.DataBlocks)
		}
		r, err := NewReader(f, int64(len(f)), Options{}, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		it := r.NewIterator()
		i := 0
		for it.SeekToFirst(); it.Valid(); it.Next() {
			if got := string(keys.UserKey(it.Key())); got != entries[i].user {
				t.Fatalf("entry %d: key %q, want %q", i, got, entries[i].user)
			}
			if got := string(it.Value()); got != entries[i].value {
				t.Fatalf("entry %d: value mismatch", i)
			}
			i++
		}
		if err := it.Error(); err != nil {
			t.Fatal(err)
		}
		if i != 1000 {
			t.Fatalf("scanned %d entries (compression %d)", i, comp)
		}
	}
}

func TestSnappyActuallyCompresses(t *testing.T) {
	entries := seqEntries(2000, 200)
	fRaw, _ := buildTable(t, Options{Compression: NoCompression}, entries)
	fSnap, _ := buildTable(t, Options{Compression: SnappyCompression}, entries)
	if len(fSnap) >= len(fRaw) {
		t.Fatalf("snappy table (%d) not smaller than raw (%d)", len(fSnap), len(fRaw))
	}
}

func TestGet(t *testing.T) {
	entries := seqEntries(500, 50)
	f, _ := buildTable(t, Options{Compression: SnappyCompression, FilterBitsPerKey: 10}, entries)
	r, err := NewReader(f, int64(len(f)), Options{}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 250, 498, 499} {
		v, del, found, err := r.Get([]byte(entries[i].user), keys.MaxSeq)
		if err != nil || !found || del {
			t.Fatalf("Get(%q): %v found=%v del=%v", entries[i].user, err, found, del)
		}
		if string(v) != entries[i].value {
			t.Fatalf("Get(%q) = %q", entries[i].user, v)
		}
	}
	if _, _, found, _ := r.Get([]byte("nokey"), keys.MaxSeq); found {
		t.Fatal("absent key reported found")
	}
}

func TestGetHonorsSnapshot(t *testing.T) {
	entries := []kv{
		{"k", 9, keys.KindSet, "new"},
		{"k", 4, keys.KindSet, "old"},
	}
	f, _ := buildTable(t, Options{}, entries)
	r, err := NewReader(f, int64(len(f)), Options{}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	v, _, found, _ := r.Get([]byte("k"), 6)
	if !found || string(v) != "old" {
		t.Fatalf("Get@6 = %q found=%v", v, found)
	}
	v, _, found, _ = r.Get([]byte("k"), keys.MaxSeq)
	if !found || string(v) != "new" {
		t.Fatalf("Get@max = %q", v)
	}
}

func TestGetTombstone(t *testing.T) {
	entries := []kv{{"k", 5, keys.KindDelete, ""}, {"k", 2, keys.KindSet, "v"}}
	f, _ := buildTable(t, Options{}, entries)
	r, _ := NewReader(f, int64(len(f)), Options{}, nil, 1)
	_, del, found, _ := r.Get([]byte("k"), keys.MaxSeq)
	if !found || !del {
		t.Fatalf("tombstone: found=%v del=%v", found, del)
	}
}

func TestSeekGE(t *testing.T) {
	entries := seqEntries(1000, 20)
	f, _ := buildTable(t, Options{Compression: SnappyCompression}, entries)
	r, _ := NewReader(f, int64(len(f)), Options{}, nil, 1)
	it := r.NewIterator()
	// Seek to a key between entries.
	it.SeekGE(keys.MakeInternal(nil, []byte("key00000500x"), keys.MaxSeq, keys.KindSet))
	if !it.Valid() || string(keys.UserKey(it.Key())) != "key00000501" {
		t.Fatalf("SeekGE landed on %q", it.Key())
	}
	// Seek past the end.
	it.SeekGE(keys.MakeInternal(nil, []byte("zzz"), keys.MaxSeq, keys.KindSet))
	if it.Valid() {
		t.Fatal("SeekGE past end should be invalid")
	}
	// Seek before the start.
	it.SeekGE(keys.MakeInternal(nil, []byte("a"), keys.MaxSeq, keys.KindSet))
	if !it.Valid() || string(keys.UserKey(it.Key())) != "key00000000" {
		t.Fatalf("SeekGE(a) landed on %q", it.Key())
	}
}

func TestBackwardIteration(t *testing.T) {
	entries := seqEntries(300, 30)
	f, _ := buildTable(t, Options{BlockSize: 256}, entries)
	r, _ := NewReader(f, int64(len(f)), Options{}, nil, 1)
	it := r.NewIterator()
	i := len(entries) - 1
	for it.SeekToLast(); it.Valid(); it.Prev() {
		if got := string(keys.UserKey(it.Key())); got != entries[i].user {
			t.Fatalf("backward entry %d: %q want %q", i, got, entries[i].user)
		}
		i--
	}
	if i != -1 {
		t.Fatalf("backward scan stopped at %d", i)
	}
}

func TestBlockCacheIsUsed(t *testing.T) {
	entries := seqEntries(2000, 64)
	f, _ := buildTable(t, Options{}, entries)
	c := cache.New(1 << 20)
	r, err := NewReader(f, int64(len(f)), Options{}, c, 99)
	if err != nil {
		t.Fatal(err)
	}
	it := r.NewIterator()
	for it.SeekToFirst(); it.Valid(); it.Next() {
	}
	if c.Len() == 0 {
		t.Fatal("scan populated no cache entries")
	}
	// A second scan should hit the cache; verify results identical.
	it2 := r.NewIterator()
	n := 0
	for it2.SeekToFirst(); it2.Valid(); it2.Next() {
		n++
	}
	if n != 2000 {
		t.Fatalf("cached scan saw %d entries", n)
	}
}

func TestRejectsOutOfOrderKeys(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	a := keys.MakeInternal(nil, []byte("b"), 1, keys.KindSet)
	b := keys.MakeInternal(nil, []byte("a"), 1, keys.KindSet)
	if err := w.Add(a, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(b, nil); err == nil {
		t.Fatal("out-of-order Add accepted")
	}
}

func TestCorruptionDetected(t *testing.T) {
	entries := seqEntries(200, 50)
	f, _ := buildTable(t, Options{}, entries)
	// Flip a byte in the first data block.
	corrupted := append(memFile(nil), f...)
	corrupted[10] ^= 0xff
	r, err := NewReader(corrupted, int64(len(corrupted)), Options{}, nil, 1)
	if err != nil {
		return // corruption caught at open: acceptable
	}
	it := r.NewIterator()
	it.SeekToFirst()
	for it.Valid() {
		it.Next()
	}
	if it.Error() == nil {
		t.Fatal("scan over corrupted block reported no error")
	}
}

func TestBadMagicRejected(t *testing.T) {
	entries := seqEntries(10, 10)
	f, _ := buildTable(t, Options{}, entries)
	bad := append(memFile(nil), f...)
	bad[len(bad)-1] ^= 0xff
	if _, err := NewReader(bad, int64(len(bad)), Options{}, nil, 1); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestEmptyTable(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	stats, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 0 {
		t.Fatal("empty table has entries")
	}
	r, err := NewReader(memFile(buf.Bytes()), int64(buf.Len()), Options{}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	it := r.NewIterator()
	it.SeekToFirst()
	if it.Valid() {
		t.Fatal("iterator over empty table is valid")
	}
}

func TestRandomAccessPattern(t *testing.T) {
	entries := seqEntries(5000, 40)
	f, _ := buildTable(t, Options{Compression: SnappyCompression, FilterBitsPerKey: 10}, entries)
	r, _ := NewReader(f, int64(len(f)), Options{}, cache.New(1<<20), 3)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		j := rng.Intn(len(entries))
		v, _, found, err := r.Get([]byte(entries[j].user), keys.MaxSeq)
		if err != nil || !found || string(v) != entries[j].value {
			t.Fatalf("random Get(%d): %v found=%v", j, err, found)
		}
	}
}

func TestHandleRoundTrip(t *testing.T) {
	h := Handle{Offset: 123456789, Size: 4096}
	enc := h.EncodeTo(nil)
	got, rest, err := DecodeHandle(enc)
	if err != nil || got != h || len(rest) != 0 {
		t.Fatalf("DecodeHandle = %+v, rest=%d, %v", got, len(rest), err)
	}
}

func TestFooterRoundTrip(t *testing.T) {
	f := Footer{MetaIndex: Handle{1000, 64}, Index: Handle{2000, 512}}
	enc := f.Encode()
	if len(enc) != FooterSize {
		t.Fatalf("footer length %d, want %d", len(enc), FooterSize)
	}
	got, err := DecodeFooter(enc)
	if err != nil || got != f {
		t.Fatalf("DecodeFooter = %+v, %v", got, err)
	}
}

func TestLargeValues(t *testing.T) {
	big := string(bytes.Repeat([]byte("v"), 64*1024))
	entries := []kv{{"big", 1, keys.KindSet, big}}
	f, _ := buildTable(t, Options{Compression: SnappyCompression}, entries)
	r, _ := NewReader(f, int64(len(f)), Options{}, nil, 1)
	v, _, found, err := r.Get([]byte("big"), keys.MaxSeq)
	if err != nil || !found || len(v) != len(big) {
		t.Fatalf("large value Get: %v found=%v len=%d", err, found, len(v))
	}
}
