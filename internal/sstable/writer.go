package sstable

import (
	"fmt"
	"io"

	"fcae/internal/bloom"
	"fcae/internal/crc"
	"fcae/internal/keys"
	"fcae/internal/snappy"
)

// Options configure table building and reading. The defaults mirror the
// paper's LevelDB settings (Table IV): 4 KiB data blocks, snappy
// compression, 16-entry restart interval.
type Options struct {
	// BlockSize is the uncompressed data block size threshold.
	BlockSize int
	// RestartInterval is the entry count between restart points.
	RestartInterval int
	// Compression selects the per-block codec.
	Compression Compression
	// FilterBitsPerKey enables a whole-table bloom filter when > 0.
	FilterBitsPerKey int
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.BlockSize <= 0 {
		o.BlockSize = 4096
	}
	if o.RestartInterval <= 0 {
		o.RestartInterval = 16
	}
	return o
}

// WriterStats summarizes a finished table.
type WriterStats struct {
	Entries     int
	DataBlocks  int
	FileSize    int64
	RawDataSize int64 // uncompressed data-block bytes
	Smallest    []byte
	Largest     []byte
}

// Writer builds an SSTable from internal keys added in increasing order.
type Writer struct {
	w      io.Writer
	opts   Options
	data   *blockBuilder
	index  *blockBuilder
	filter bloom.Filter

	offset     int64
	pending    Handle // handle of the block awaiting an index entry
	pendingKey []byte // last key of that block
	hasPending bool

	filterKeys [][]byte
	stats      WriterStats
	lastKey    []byte
	cbuf       []byte
	err        error
	finished   bool
}

// NewWriter returns a Writer emitting the table to w.
func NewWriter(w io.Writer, opts Options) *Writer {
	opts = opts.withDefaults()
	tw := &Writer{
		w:     w,
		opts:  opts,
		data:  newBlockBuilder(opts.RestartInterval),
		index: newBlockBuilder(1),
	}
	if opts.FilterBitsPerKey > 0 {
		tw.filter = bloom.New(opts.FilterBitsPerKey)
	}
	return tw
}

// Add appends an entry. Internal keys must strictly increase under
// keys.Compare.
func (w *Writer) Add(ikey, value []byte) error {
	if w.err != nil {
		return w.err
	}
	if w.finished {
		return fmt.Errorf("sstable: Add after Finish")
	}
	if len(w.lastKey) > 0 && keys.Compare(ikey, w.lastKey) <= 0 {
		w.err = fmt.Errorf("sstable: keys out of order: %x <= %x", ikey, w.lastKey)
		return w.err
	}
	w.flushPendingIndex(ikey)

	if w.stats.Entries == 0 {
		w.stats.Smallest = append([]byte(nil), ikey...)
	}
	w.lastKey = append(w.lastKey[:0], ikey...)
	w.stats.Entries++
	if w.opts.FilterBitsPerKey > 0 {
		w.filterKeys = append(w.filterKeys, append([]byte(nil), keys.UserKey(ikey)...))
	}

	w.data.add(ikey, value)
	if w.data.estimatedSize() >= w.opts.BlockSize {
		w.finishDataBlock()
	}
	return w.err
}

// flushPendingIndex emits the deferred index entry for the previous data
// block, using the shortest separator below the upcoming key.
func (w *Writer) flushPendingIndex(upcoming []byte) {
	if !w.hasPending {
		return
	}
	// The MaxSeq trailer is only safe when the separator user key is
	// STRICTLY greater than the block's last user key; otherwise
	// (user, MaxSeq) would sort before the block's own entries and seeks
	// at older snapshot sequences would skip the block. Fall back to the
	// full last internal key in that case, exactly as LevelDB's
	// FindShortestSeparator does.
	sep := w.pendingKey
	pendingUser := keys.UserKey(w.pendingKey)
	var u []byte
	if upcoming != nil {
		u = keys.Separator(pendingUser, keys.UserKey(upcoming))
	} else {
		u = keys.Successor(pendingUser)
	}
	if keys.CompareUser(u, pendingUser) > 0 {
		sep = keys.MakeInternal(nil, u, keys.MaxSeq, keys.KindSet)
	}
	w.index.add(sep, w.pending.EncodeTo(nil))
	w.hasPending = false
}

// finishDataBlock compresses and writes the current data block.
func (w *Writer) finishDataBlock() {
	if w.data.empty() || w.err != nil {
		return
	}
	contents := w.data.finish()
	w.stats.RawDataSize += int64(len(contents))
	h, err := w.writeBlock(contents, w.opts.Compression)
	if err != nil {
		w.err = err
		return
	}
	w.pending = h
	w.pendingKey = append(w.pendingKey[:0], w.lastKey...)
	w.hasPending = true
	w.stats.DataBlocks++
	w.data.reset()
}

// writeBlock writes contents (compressing per c) plus the trailer and
// returns its handle.
func (w *Writer) writeBlock(contents []byte, c Compression) (Handle, error) {
	payload := contents
	ctype := byte(NoCompression)
	if c == SnappyCompression {
		w.cbuf = snappy.Encode(w.cbuf[:0], contents)
		// Only keep compression that actually saves space, as LevelDB does.
		if len(w.cbuf) < len(contents)-len(contents)/8 {
			payload = w.cbuf
			ctype = byte(SnappyCompression)
		}
	}
	h := Handle{Offset: uint64(w.offset), Size: uint64(len(payload))}
	var trailer [BlockTrailerSize]byte
	trailer[0] = ctype
	sum := crc.Value(payload)
	sum = crc.Extend(sum, trailer[:1])
	trailer[1] = byte(sum)
	trailer[2] = byte(sum >> 8)
	trailer[3] = byte(sum >> 16)
	trailer[4] = byte(sum >> 24)
	if _, err := w.w.Write(payload); err != nil {
		return Handle{}, err
	}
	if _, err := w.w.Write(trailer[:]); err != nil {
		return Handle{}, err
	}
	w.offset += int64(len(payload)) + BlockTrailerSize
	return h, nil
}

// EstimatedSize returns the bytes written so far plus the buffered block.
func (w *Writer) EstimatedSize() int64 {
	return w.offset + int64(w.data.estimatedSize())
}

// Entries returns the number of entries added so far.
func (w *Writer) Entries() int { return w.stats.Entries }

// Finish writes the filter, metaindex, index blocks and footer, returning
// the final table stats.
func (w *Writer) Finish() (WriterStats, error) {
	if w.err != nil {
		return w.stats, w.err
	}
	if w.finished {
		return w.stats, fmt.Errorf("sstable: Finish called twice")
	}
	w.finished = true
	w.finishDataBlock()
	w.flushPendingIndex(nil)
	if w.err != nil {
		return w.stats, w.err
	}

	// Filter block (uncompressed).
	meta := newBlockBuilder(1)
	if w.opts.FilterBitsPerKey > 0 && len(w.filterKeys) > 0 {
		fb := w.filter.Append(nil, w.filterKeys)
		h, err := w.writeBlock(fb, NoCompression)
		if err != nil {
			w.err = err
			return w.stats, err
		}
		meta.add([]byte("filter."+w.filter.Name()), h.EncodeTo(nil))
	}
	metaHandle, err := w.writeRawBlock(meta.finish())
	if err != nil {
		w.err = err
		return w.stats, err
	}
	indexHandle, err := w.writeRawBlock(w.index.finish())
	if err != nil {
		w.err = err
		return w.stats, err
	}
	footer := Footer{MetaIndex: metaHandle, Index: indexHandle}
	if _, err := w.w.Write(footer.Encode()); err != nil {
		w.err = err
		return w.stats, err
	}
	w.offset += FooterSize
	w.stats.FileSize = w.offset
	w.stats.Largest = append([]byte(nil), w.lastKey...)
	return w.stats, nil
}

// writeRawBlock stores a block without compression.
func (w *Writer) writeRawBlock(contents []byte) (Handle, error) {
	return w.writeBlock(contents, NoCompression)
}
