package sstable

import (
	"fmt"
	"io"

	"fcae/internal/bloom"
	"fcae/internal/crc"
	"fcae/internal/keys"
	"fcae/internal/snappy"
)

// Options configure table building and reading. The defaults mirror the
// paper's LevelDB settings (Table IV): 4 KiB data blocks, snappy
// compression, 16-entry restart interval.
type Options struct {
	// BlockSize is the uncompressed data block size threshold.
	BlockSize int
	// RestartInterval is the entry count between restart points.
	RestartInterval int
	// Compression selects the per-block codec.
	Compression Compression
	// FilterBitsPerKey enables a whole-table bloom filter when > 0.
	FilterBitsPerKey int
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.BlockSize <= 0 {
		o.BlockSize = 4096
	}
	if o.RestartInterval <= 0 {
		o.RestartInterval = 16
	}
	return o
}

// WriterStats summarizes a finished table.
type WriterStats struct {
	Entries     int
	DataBlocks  int
	FileSize    int64
	RawDataSize int64 // uncompressed data-block bytes
	Smallest    []byte
	Largest     []byte
}

// Writer builds an SSTable from internal keys added in increasing order.
//
// The index block is built at Finish from two parallel records: seps
// (one separator per data block, computed when the next key — and so the
// shortest separator — is known) and handles (one Handle per data block,
// recorded in write order). Keeping them separate is what lets the
// asynchronous encode pipeline hand completed blocks to workers while the
// merge keeps adding entries: the separator is known on the producing
// side long before the block's final file offset is. The sequential path
// records both inline, so a table's bytes are identical either way.
type Writer struct {
	w      io.Writer
	opts   Options
	data   *blockBuilder
	filter bloom.Filter

	offset     int64
	pendingKey []byte // last key of the block awaiting a separator
	hasPending bool

	// Deferred index entries: sepBuf/sepEnds is a flat encoding of one
	// separator key per finished data block; handles holds the written
	// blocks' handles in the same order.
	sepBuf  []byte
	sepEnds []int
	handles []Handle

	filterKeys [][]byte
	stats      WriterStats
	lastKey    []byte
	cbuf       []byte
	sepScratch []byte
	err        error
	finished   bool

	// async is non-nil when the writer hands finished data blocks to an
	// EncodePipeline instead of encoding them inline (see pipeline.go).
	async *asyncWriter
}

// NewWriter returns a Writer emitting the table to w.
func NewWriter(w io.Writer, opts Options) *Writer {
	opts = opts.withDefaults()
	tw := &Writer{
		w:    w,
		opts: opts,
		data: newBlockBuilder(opts.RestartInterval),
	}
	if opts.FilterBitsPerKey > 0 {
		tw.filter = bloom.New(opts.FilterBitsPerKey)
	}
	return tw
}

// Add appends an entry. Internal keys must strictly increase under
// keys.Compare.
func (w *Writer) Add(ikey, value []byte) error {
	if w.err != nil {
		return w.err
	}
	if w.finished {
		return fmt.Errorf("sstable: Add after Finish")
	}
	if len(w.lastKey) > 0 && keys.Compare(ikey, w.lastKey) <= 0 {
		w.err = fmt.Errorf("sstable: keys out of order: %x <= %x", ikey, w.lastKey)
		return w.err
	}
	w.flushPendingIndex(ikey)

	if w.stats.Entries == 0 {
		w.stats.Smallest = append([]byte(nil), ikey...)
	}
	w.lastKey = append(w.lastKey[:0], ikey...)
	w.stats.Entries++
	if w.opts.FilterBitsPerKey > 0 {
		w.filterKeys = append(w.filterKeys, append([]byte(nil), keys.UserKey(ikey)...))
	}

	w.data.add(ikey, value)
	if w.data.estimatedSize() >= w.opts.BlockSize {
		w.finishDataBlock()
	}
	return w.err
}

// flushPendingIndex records the deferred separator for the previous data
// block, using the shortest separator below the upcoming key. The index
// entry itself is emitted by finishTail once the block's handle is known.
func (w *Writer) flushPendingIndex(upcoming []byte) {
	if !w.hasPending {
		return
	}
	// The MaxSeq trailer is only safe when the separator user key is
	// STRICTLY greater than the block's last user key; otherwise
	// (user, MaxSeq) would sort before the block's own entries and seeks
	// at older snapshot sequences would skip the block. Fall back to the
	// full last internal key in that case, exactly as LevelDB's
	// FindShortestSeparator does.
	sep := w.pendingKey
	pendingUser := keys.UserKey(w.pendingKey)
	var u []byte
	if upcoming != nil {
		u = keys.Separator(pendingUser, keys.UserKey(upcoming))
	} else {
		u = keys.Successor(pendingUser)
	}
	if keys.CompareUser(u, pendingUser) > 0 {
		w.sepScratch = keys.MakeInternal(w.sepScratch[:0], u, keys.MaxSeq, keys.KindSet)
		sep = w.sepScratch
	}
	w.recordSep(sep)
	w.hasPending = false
}

// recordSep appends one separator to the flat deferred-index record.
func (w *Writer) recordSep(sep []byte) {
	w.sepBuf = append(w.sepBuf, sep...)
	w.sepEnds = append(w.sepEnds, len(w.sepBuf))
}

// finishDataBlock compresses and writes the current data block — or, in
// async mode, hands its contents to the encode pipeline.
func (w *Writer) finishDataBlock() {
	if w.data.empty() || w.err != nil {
		return
	}
	contents := w.data.finish()
	w.stats.RawDataSize += int64(len(contents))
	if w.async != nil {
		w.stageAsync(contents)
	} else {
		h, err := w.writeBlock(contents, w.opts.Compression)
		if err != nil {
			w.err = err
			return
		}
		w.handles = append(w.handles, h)
		w.data.reset()
	}
	w.pendingKey = append(w.pendingKey[:0], w.lastKey...)
	w.hasPending = true
	w.stats.DataBlocks++
}

// writeBlock writes contents (compressing per c) plus the trailer and
// returns its handle.
func (w *Writer) writeBlock(contents []byte, c Compression) (Handle, error) {
	payload := contents
	ctype := byte(NoCompression)
	if c == SnappyCompression {
		w.cbuf = snappy.Encode(w.cbuf[:0], contents)
		// Only keep compression that actually saves space, as LevelDB does.
		if len(w.cbuf) < len(contents)-len(contents)/8 {
			payload = w.cbuf
			ctype = byte(SnappyCompression)
		}
	}
	h := Handle{Offset: uint64(w.offset), Size: uint64(len(payload))}
	var trailer [BlockTrailerSize]byte
	trailer[0] = ctype
	sum := crc.Value(payload)
	sum = crc.Extend(sum, trailer[:1])
	trailer[1] = byte(sum)
	trailer[2] = byte(sum >> 8)
	trailer[3] = byte(sum >> 16)
	trailer[4] = byte(sum >> 24)
	if _, err := w.w.Write(payload); err != nil {
		return Handle{}, err
	}
	if _, err := w.w.Write(trailer[:]); err != nil {
		return Handle{}, err
	}
	w.offset += int64(len(payload)) + BlockTrailerSize
	return h, nil
}

// EstimatedSize returns the bytes written so far plus the buffered block.
func (w *Writer) EstimatedSize() int64 {
	return w.offset + int64(w.data.estimatedSize())
}

// Entries returns the number of entries added so far.
func (w *Writer) Entries() int { return w.stats.Entries }

// Finish writes the filter, metaindex, index blocks and footer, returning
// the final table stats. Async writers must use FinishAsync instead: their
// tail is written by the pipeline's sequencer once every data block is on
// disk.
func (w *Writer) Finish() (WriterStats, error) {
	if w.err != nil {
		return w.stats, w.err
	}
	if w.finished {
		return w.stats, fmt.Errorf("sstable: Finish called twice")
	}
	if w.async != nil {
		return w.stats, fmt.Errorf("sstable: Finish on an async writer (use FinishAsync)")
	}
	w.finished = true
	w.finishDataBlock()
	w.flushPendingIndex(nil)
	if w.err != nil {
		return w.stats, w.err
	}
	return w.finishTail()
}

// finishTail writes the filter, metaindex and index blocks plus the
// footer. In async mode it runs on the pipeline's sequencer goroutine
// after the last data block has been written; by then the producing side
// has stopped touching the writer (the finish hand-off orders the two).
func (w *Writer) finishTail() (WriterStats, error) {
	if w.async != nil && w.async.werr != nil {
		return w.stats, w.async.werr
	}
	if len(w.sepEnds) != len(w.handles) {
		w.err = fmt.Errorf("sstable: internal: %d separators for %d data blocks", len(w.sepEnds), len(w.handles))
		return w.stats, w.err
	}

	// Filter block (uncompressed).
	meta := newBlockBuilder(1)
	if w.opts.FilterBitsPerKey > 0 && len(w.filterKeys) > 0 {
		fb := w.filter.Append(nil, w.filterKeys)
		h, err := w.writeBlock(fb, NoCompression)
		if err != nil {
			w.err = err
			return w.stats, err
		}
		meta.add([]byte("filter."+w.filter.Name()), h.EncodeTo(nil))
	}
	metaHandle, err := w.writeRawBlock(meta.finish())
	if err != nil {
		w.err = err
		return w.stats, err
	}
	// Pair the recorded separators with the written handles, in block
	// order. The builder sees the same entry sequence the incremental
	// build did, so the index block's bytes are unchanged.
	index := newBlockBuilder(1)
	var hbuf []byte
	start := 0
	for i, end := range w.sepEnds {
		hbuf = w.handles[i].EncodeTo(hbuf[:0])
		index.add(w.sepBuf[start:end], hbuf)
		start = end
	}
	indexHandle, err := w.writeRawBlock(index.finish())
	if err != nil {
		w.err = err
		return w.stats, err
	}
	footer := Footer{MetaIndex: metaHandle, Index: indexHandle}
	if _, err := w.w.Write(footer.Encode()); err != nil {
		w.err = err
		return w.stats, err
	}
	w.offset += FooterSize
	w.stats.FileSize = w.offset
	w.stats.Largest = append([]byte(nil), w.lastKey...)
	return w.stats, nil
}

// writeRawBlock stores a block without compression.
func (w *Writer) writeRawBlock(contents []byte) (Handle, error) {
	return w.writeBlock(contents, NoCompression)
}
