package sstable

import (
	"encoding/binary"
	"fmt"
	"io"

	"fcae/internal/bloom"
	"fcae/internal/crc"
	"fcae/internal/keys"
)

// Raw block access for the FCAE engine: the host splits input tables into
// index entries plus raw (still compressed) data blocks when building the
// device memory images, and recombines the engine's output blocks into
// standard tables afterwards (paper §V-B: "the host is in charge of
// combining data blocks with index blocks into new formatted SSTables").

// RawBlock is one data block as stored in the file: the compression-type
// byte and the (possibly compressed) payload, checksum already verified.
type RawBlock struct {
	// IndexKey is the index entry's separator key (>= every key in the
	// block, < every key in the next block).
	IndexKey []byte
	CType    byte
	Payload  []byte
}

// VisitRawBlocks calls visit for every data block in index order.
func (r *Reader) VisitRawBlocks(visit func(b RawBlock) error) error {
	it := r.index.iter()
	for it.SeekToFirst(); it.Valid(); it.Next() {
		h, _, err := DecodeHandle(it.Value())
		if err != nil {
			return err
		}
		raw := make([]byte, h.Size+BlockTrailerSize)
		if _, err := r.f.ReadAt(raw, int64(h.Offset)); err != nil {
			return err
		}
		payload := raw[:h.Size]
		trailer := raw[h.Size:]
		sum := crc.Value(payload)
		sum = crc.Extend(sum, trailer[:1])
		if sum != binary.LittleEndian.Uint32(trailer[1:]) {
			return fmt.Errorf("%w: raw block checksum mismatch at %d", ErrCorrupt, h.Offset)
		}
		if err := visit(RawBlock{
			IndexKey: append([]byte(nil), it.Key()...),
			CType:    trailer[0],
			Payload:  payload,
		}); err != nil {
			return err
		}
	}
	return it.Error()
}

// BlockIter iterates the entries of one decoded data block's contents,
// exposed for the engine's Data Block Decoder.
type BlockIter struct {
	inner *blockIter
}

// NewBlockIter parses contents (already decompressed) and returns an
// iterator positioned before the first entry.
func NewBlockIter(contents []byte) (*BlockIter, error) {
	b, err := newBlock(contents, keys.Compare)
	if err != nil {
		return nil, err
	}
	return &BlockIter{inner: b.iter()}, nil
}

// Reset re-points the iterator at new block contents, reusing the parse
// state (restart array, key scratch) so a decode loop holding one
// BlockIter per lane does no per-block allocation. The iterator is left
// positioned before the first entry, exactly as NewBlockIter returns it.
func (it *BlockIter) Reset(contents []byte) error {
	if err := it.inner.b.reset(contents); err != nil {
		return err
	}
	inner := it.inner
	inner.off = 0
	inner.key = inner.key[:0]
	inner.val = nil
	inner.valid = false
	inner.err = nil
	return nil
}

// SeekToFirst positions at the first entry.
func (it *BlockIter) SeekToFirst() { it.inner.SeekToFirst() }

// Next advances to the following entry.
func (it *BlockIter) Next() { it.inner.Next() }

// Valid reports whether an entry is available.
func (it *BlockIter) Valid() bool { return it.inner.Valid() }

// Key returns the current internal key.
func (it *BlockIter) Key() []byte { return it.inner.Key() }

// Value returns the current value.
func (it *BlockIter) Value() []byte { return it.inner.Value() }

// Error returns the first parse error.
func (it *BlockIter) Error() error { return it.inner.Error() }

// BlockWriter builds one data block's contents in the standard format,
// exposed for the engine's Data Block Encoder.
type BlockWriter struct {
	b *blockBuilder
}

// NewBlockWriter returns an empty builder with the given restart interval
// (0 selects the default of 16).
func NewBlockWriter(restartInterval int) *BlockWriter {
	if restartInterval <= 0 {
		restartInterval = 16
	}
	return &BlockWriter{b: newBlockBuilder(restartInterval)}
}

// Add appends an entry; keys must strictly increase.
func (w *BlockWriter) Add(key, value []byte) { w.b.add(key, value) }

// EstimatedSize returns the finished size of the block so far.
func (w *BlockWriter) EstimatedSize() int { return w.b.estimatedSize() }

// Entries returns the number of entries added.
func (w *BlockWriter) Entries() int { return w.b.entries }

// Empty reports whether nothing has been added.
func (w *BlockWriter) Empty() bool { return w.b.empty() }

// Finish returns the completed block contents and resets the builder.
func (w *BlockWriter) Finish() []byte {
	//fcae:alloc-ok the copy is the API contract: the caller keeps the block, the builder's buffer is reused
	out := append([]byte(nil), w.b.finish()...)
	w.b.reset()
	return out
}

// FinishInto appends the completed block contents to dst and resets the
// builder. Unlike Finish it makes no fresh copy: callers own dst (usually
// reused scratch) and must copy before the next block if they retain it.
func (w *BlockWriter) FinishInto(dst []byte) []byte {
	out := append(dst, w.b.finish()...)
	w.b.reset()
	return out
}

// Assembler writes a standard table file from pre-encoded raw data blocks,
// the host-side combiner for engine output. Block last-keys double as
// index keys (they satisfy the separator contract exactly).
type Assembler struct {
	w          *Writer
	filterKeys [][]byte
	bitsPerKey int
}

// NewAssembler returns an assembler writing to w. opts.Compression is
// ignored (blocks arrive already encoded); FilterBitsPerKey attaches a
// bloom filter when filter keys are supplied.
func NewAssembler(w io.Writer, opts Options) *Assembler {
	opts = opts.withDefaults()
	return &Assembler{
		w:          NewWriter(w, opts),
		bitsPerKey: opts.FilterBitsPerKey,
	}
}

// AddRawBlock appends one pre-encoded block. lastKey is the block's final
// internal key; ctype/payload are written verbatim with a fresh checksum
// trailer.
func (a *Assembler) AddRawBlock(lastKey []byte, ctype byte, payload []byte, entries int) error {
	if a.w.err != nil {
		return a.w.err
	}
	a.w.flushPendingIndexRaw()
	h, err := a.w.writePreEncodedBlock(ctype, payload)
	if err != nil {
		a.w.err = err
		return err
	}
	a.w.handles = append(a.w.handles, h)
	a.w.pendingKey = append(a.w.pendingKey[:0], lastKey...)
	a.w.hasPending = true
	a.w.stats.DataBlocks++
	a.w.stats.Entries += entries
	if a.w.stats.Smallest == nil {
		// Smallest is patched by SetBounds; keep a placeholder.
		a.w.stats.Smallest = append([]byte(nil), lastKey...)
	}
	a.w.lastKey = append(a.w.lastKey[:0], lastKey...)
	return nil
}

// SetBounds records the table's smallest and largest internal keys (from
// the engine's MetaOut).
func (a *Assembler) SetBounds(smallest, largest []byte) {
	a.w.stats.Smallest = append([]byte(nil), smallest...)
	a.w.stats.Largest = append([]byte(nil), largest...)
}

// AddFilterKey registers a user key for the bloom filter.
func (a *Assembler) AddFilterKey(userKey []byte) {
	if a.bitsPerKey > 0 {
		a.filterKeys = append(a.filterKeys, append([]byte(nil), userKey...))
	}
}

// Finish writes the index block, filter and footer.
func (a *Assembler) Finish() (WriterStats, error) {
	a.w.filterKeys = a.filterKeys
	if a.bitsPerKey > 0 {
		a.w.opts.FilterBitsPerKey = a.bitsPerKey
		a.w.filter = bloomFor(a.bitsPerKey)
	}
	largest := append([]byte(nil), a.w.stats.Largest...)
	stats, err := a.w.Finish()
	if err == nil && largest != nil {
		stats.Largest = largest
		a.w.stats.Largest = largest
	}
	return stats, err
}

func bloomFor(bits int) bloom.Filter { return bloom.New(bits) }

// flushPendingIndexRaw records the pending separator using the stored last
// key verbatim (no separator shortening; the engine already supplies
// minimal keys). The entry is emitted by finishTail.
func (w *Writer) flushPendingIndexRaw() {
	if !w.hasPending {
		return
	}
	w.recordSep(w.pendingKey)
	w.hasPending = false
}

// writePreEncodedBlock stores an already-compressed block payload.
func (w *Writer) writePreEncodedBlock(ctype byte, payload []byte) (Handle, error) {
	h := Handle{Offset: uint64(w.offset), Size: uint64(len(payload))}
	var trailer [BlockTrailerSize]byte
	trailer[0] = ctype
	sum := crc.Value(payload)
	sum = crc.Extend(sum, trailer[:1])
	binary.LittleEndian.PutUint32(trailer[1:], sum)
	if _, err := w.w.Write(payload); err != nil {
		return Handle{}, err
	}
	if _, err := w.w.Write(trailer[:]); err != nil {
		return Handle{}, err
	}
	w.offset += int64(len(payload)) + BlockTrailerSize
	return h, nil
}
