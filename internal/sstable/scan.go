package sstable

import (
	"encoding/binary"
	"fmt"

	"fcae/internal/crc"
	"fcae/internal/snappy"
)

// BlockScanner is the read-ahead seam for the compaction pipeline's
// prefetch stage: a strictly forward, index-ordered walk over a table's
// data blocks that reads and decompresses into caller-owned buffers. It
// bypasses the block cache on purpose — a compaction touches every block
// exactly once, and filling the cache with them would evict the read
// path's working set.

// BlockBuf holds one block's scratch: raw is the read buffer (payload +
// trailer), scratch the snappy decode target. The contents returned by
// Next alias one of the two, so a buffer must not be reused until its
// contents have been consumed; recycle the BlockBuf as a unit.
type BlockBuf struct {
	raw     []byte
	scratch []byte
}

// BlockScanner walks one table's data blocks in index order.
type BlockScanner struct {
	r  *Reader
	it blockIter
}

// Reset points the scanner at r's first data block, reusing the
// scanner's iterator state across tables.
func (s *BlockScanner) Reset(r *Reader) {
	s.r = r
	s.it.b = r.index
	s.it.off = 0
	s.it.key = s.it.key[:0]
	s.it.val = nil
	s.it.valid = false
	s.it.err = nil
	s.it.SeekToFirst()
}

// Next reads the next data block into buf and returns its decompressed
// contents (aliasing buf's storage). ok is false at the end of the table
// or on error.
func (s *BlockScanner) Next(buf *BlockBuf) (contents []byte, ok bool, err error) {
	if !s.it.Valid() {
		return nil, false, s.it.Error()
	}
	h, _, err := DecodeHandle(s.it.Value())
	if err != nil {
		return nil, false, err
	}
	s.it.Next()
	n := int(h.Size) + BlockTrailerSize
	if cap(buf.raw) < n {
		//fcae:alloc-ok grow-on-demand scratch: buffers are pooled by the prefetcher, so steady state re-slices
		buf.raw = make([]byte, n)
	}
	buf.raw = buf.raw[:n]
	if _, err := s.r.f.ReadAt(buf.raw, int64(h.Offset)); err != nil {
		return nil, false, err
	}
	payload := buf.raw[:h.Size]
	trailer := buf.raw[h.Size:]
	sum := crc.Value(payload)
	sum = crc.Extend(sum, trailer[:1])
	if sum != binary.LittleEndian.Uint32(trailer[1:]) {
		return nil, false, fmt.Errorf("%w: block checksum mismatch at offset %d", ErrCorrupt, h.Offset)
	}
	switch Compression(trailer[0]) {
	case NoCompression:
		contents = payload
	case SnappyCompression:
		buf.scratch, err = snappy.Decode(buf.scratch, payload)
		if err != nil {
			return nil, false, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		contents = buf.scratch
	default:
		return nil, false, fmt.Errorf("%w: unknown compression %d", ErrCorrupt, trailer[0])
	}
	return contents, true, nil
}
