// Package sstable implements the on-disk sorted table format shared by the
// software store and the FCAE engine (paper §II-B): a sequence of
// prefix-compressed data blocks followed by meta blocks, an index block
// whose entries map separator keys to data block handles, and a fixed
// footer. Each block carries a 1-byte compression type and a masked
// CRC-32C trailer.
package sstable

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	// BlockTrailerSize is the compression-type byte plus CRC.
	BlockTrailerSize = 5

	// FooterSize holds two block handles (padded) plus the magic number.
	FooterSize = 2*binary.MaxVarintLen64*2 + 8

	// Magic identifies the table format (spells "fcaetbl1").
	Magic = 0x6663616574626c31
)

// Compression identifies the per-block compression codec.
type Compression uint8

const (
	// NoCompression stores blocks raw.
	NoCompression Compression = 0
	// SnappyCompression compresses blocks with internal/snappy.
	SnappyCompression Compression = 1
)

// String names the codec ("none", "snappy").
func (c Compression) String() string {
	switch c {
	case NoCompression:
		return "none"
	case SnappyCompression:
		return "snappy"
	default:
		return fmt.Sprintf("unknown(%d)", uint8(c))
	}
}

// ErrCorrupt reports a malformed or checksum-failing table region.
var ErrCorrupt = errors.New("sstable: corrupt table")

// Handle locates a block within the file (offset and length exclude the
// block trailer).
type Handle struct {
	Offset uint64
	Size   uint64
}

// EncodeTo appends the varint encoding of h to dst.
func (h Handle) EncodeTo(dst []byte) []byte {
	var buf [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], h.Offset)
	n += binary.PutUvarint(buf[n:], h.Size)
	return append(dst, buf[:n]...)
}

// DecodeHandle parses a handle from src, returning the remaining bytes.
func DecodeHandle(src []byte) (Handle, []byte, error) {
	off, n := binary.Uvarint(src)
	if n <= 0 {
		return Handle{}, nil, fmt.Errorf("%w: bad handle offset", ErrCorrupt)
	}
	src = src[n:]
	size, n := binary.Uvarint(src)
	if n <= 0 {
		return Handle{}, nil, fmt.Errorf("%w: bad handle size", ErrCorrupt)
	}
	return Handle{Offset: off, Size: size}, src[n:], nil
}

// Footer is the fixed-size table trailer locating the metaindex and index
// blocks.
type Footer struct {
	MetaIndex Handle
	Index     Handle
}

// Encode renders the footer into exactly FooterSize bytes.
func (f Footer) Encode() []byte {
	buf := make([]byte, 0, FooterSize)
	buf = f.MetaIndex.EncodeTo(buf)
	buf = f.Index.EncodeTo(buf)
	for len(buf) < FooterSize-8 {
		buf = append(buf, 0)
	}
	var magic [8]byte
	binary.LittleEndian.PutUint64(magic[:], Magic)
	return append(buf, magic[:]...)
}

// DecodeFooter parses the footer from the final FooterSize bytes of a file.
func DecodeFooter(buf []byte) (Footer, error) {
	if len(buf) != FooterSize {
		return Footer{}, fmt.Errorf("%w: footer is %d bytes, want %d", ErrCorrupt, len(buf), FooterSize)
	}
	if binary.LittleEndian.Uint64(buf[FooterSize-8:]) != Magic {
		return Footer{}, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	var f Footer
	var err error
	rest := buf[:FooterSize-8]
	if f.MetaIndex, rest, err = DecodeHandle(rest); err != nil {
		return Footer{}, err
	}
	if f.Index, _, err = DecodeHandle(rest); err != nil {
		return Footer{}, err
	}
	return f, nil
}
