package sstable

import (
	"bytes"
	"encoding/binary"
	"testing"

	"fcae/internal/keys"
)

// buildFuzzBlock returns a small well-formed block for the seed corpus.
func buildFuzzBlock(restartInterval, entries int) []byte {
	w := NewBlockWriter(restartInterval)
	for i := 0; i < entries; i++ {
		user := []byte{'k', byte('a' + i)}
		ikey := keys.MakeInternal(nil, user, uint64(100-i), keys.KindSet)
		w.Add(ikey, bytes.Repeat([]byte{byte(i)}, i%7))
	}
	return w.Finish()
}

// FuzzBlockDecode throws arbitrary bytes at the block decoder: parsing must
// either fail cleanly or yield a finite entry sequence — never panic, even
// on hostile varints or truncated restart arrays.
func FuzzBlockDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(buildFuzzBlock(16, 5))
	f.Add(buildFuzzBlock(2, 9))
	// A shared-prefix length of 2^63: int(shared) used to go negative and
	// bypass the bounds checks, panicking on the key slice.
	huge := append(binary.AppendUvarint(nil, 1<<63), 1, 1, 'k', 'v')
	var tmp [4]byte
	huge = append(huge, tmp[:]...) // restart offset 0
	binary.LittleEndian.PutUint32(tmp[:], 1)
	huge = append(huge, tmp[:]...) // restart count 1
	f.Add(huge)
	// Same attack on the unshared length.
	huge2 := append([]byte{0}, binary.AppendUvarint(nil, 1<<62)...)
	huge2 = append(huge2, 1, 'v')
	huge2 = append(huge2, 0, 0, 0, 0, 1, 0, 0, 0)
	f.Add(huge2)

	f.Fuzz(func(t *testing.T, data []byte) {
		it, err := NewBlockIter(data)
		if err != nil {
			return
		}
		n := 0
		for it.SeekToFirst(); it.Valid(); it.Next() {
			_, _ = it.Key(), it.Value()
			n++
			// Every entry consumes at least its 3 header bytes, so a
			// decoded block can never yield more entries than bytes.
			if n > len(data) {
				t.Fatalf("iterator yielded %d entries from %d bytes", n, len(data))
			}
		}
		if it.Error() != nil && it.Valid() {
			t.Fatal("iterator valid after error")
		}
	})
}

// FuzzBlockRoundtrip builds a block from derived ordered entries and checks
// decode returns them exactly.
func FuzzBlockRoundtrip(f *testing.F) {
	f.Add([]byte("seed"), 3, 16)
	f.Add([]byte{0xff, 0x00, 0x41}, 20, 2)
	f.Fuzz(func(t *testing.T, raw []byte, entries, restartInterval int) {
		if entries < 0 || entries > 200 {
			return
		}
		w := NewBlockWriter(restartInterval)
		var wantK, wantV [][]byte
		for i := 0; i < entries; i++ {
			// Strictly increasing user keys; value bytes sliced from raw.
			user := binary.BigEndian.AppendUint32(nil, uint32(i))
			if len(raw) > 0 {
				user = append(user, raw[i%len(raw)])
			}
			ikey := keys.MakeInternal(nil, user, uint64(i), keys.KindSet)
			val := raw[:i%(len(raw)+1)]
			w.Add(ikey, val)
			wantK = append(wantK, ikey)
			wantV = append(wantV, append([]byte(nil), val...))
		}
		it, err := NewBlockIter(w.Finish())
		if err != nil {
			t.Fatalf("decoding a just-built block: %v", err)
		}
		i := 0
		for it.SeekToFirst(); it.Valid(); it.Next() {
			if i >= entries {
				t.Fatalf("more entries than written (%d)", entries)
			}
			if !bytes.Equal(it.Key(), wantK[i]) || !bytes.Equal(it.Value(), wantV[i]) {
				t.Fatalf("entry %d mismatch", i)
			}
			i++
		}
		if err := it.Error(); err != nil {
			t.Fatal(err)
		}
		if i != entries {
			t.Fatalf("decoded %d of %d entries", i, entries)
		}
	})
}
