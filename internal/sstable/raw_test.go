package sstable

import (
	"bytes"
	"fmt"
	"testing"

	"fcae/internal/keys"
)

func TestVisitRawBlocksCoversTable(t *testing.T) {
	entries := seqEntries(2000, 64)
	f, stats := buildTable(t, Options{Compression: SnappyCompression}, entries)
	r, err := NewReader(f, int64(len(f)), Options{}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	blocks := 0
	var lastIndexKey []byte
	err = r.VisitRawBlocks(func(b RawBlock) error {
		blocks++
		if len(b.Payload) == 0 {
			t.Fatal("empty block payload")
		}
		if lastIndexKey != nil && keys.Compare(lastIndexKey, b.IndexKey) >= 0 {
			t.Fatal("index keys not ascending")
		}
		lastIndexKey = append(lastIndexKey[:0], b.IndexKey...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if blocks != stats.DataBlocks {
		t.Fatalf("visited %d blocks, table has %d", blocks, stats.DataBlocks)
	}
}

func TestVisitRawBlocksDetectsCorruption(t *testing.T) {
	entries := seqEntries(500, 64)
	f, _ := buildTable(t, Options{}, entries)
	bad := append(memFile(nil), f...)
	bad[20] ^= 0xff
	r, err := NewReader(bad, int64(len(bad)), Options{}, nil, 1)
	if err != nil {
		return // caught at open
	}
	if err := r.VisitRawBlocks(func(RawBlock) error { return nil }); err == nil {
		t.Fatal("corrupt block passed raw visit")
	}
}

func TestBlockWriterIterRoundTrip(t *testing.T) {
	w := NewBlockWriter(4)
	type kv struct{ k, v string }
	var want []kv
	for i := 0; i < 100; i++ {
		ik := keys.MakeInternal(nil, []byte(fmt.Sprintf("key%04d", i)), uint64(i+1), keys.KindSet)
		v := fmt.Sprintf("value-%d", i)
		w.Add(ik, []byte(v))
		want = append(want, kv{string(ik), v})
	}
	if w.Entries() != 100 {
		t.Fatalf("Entries = %d", w.Entries())
	}
	contents := w.Finish()
	if !w.Empty() {
		t.Fatal("Finish must reset the builder")
	}
	it, err := NewBlockIter(contents)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if string(it.Key()) != want[i].k || string(it.Value()) != want[i].v {
			t.Fatalf("entry %d mismatch", i)
		}
		i++
	}
	if i != 100 {
		t.Fatalf("iterated %d entries", i)
	}
}

func TestAssemblerRoundTrip(t *testing.T) {
	// Build blocks by hand (as the engine's encoder does), assemble a
	// table, and verify it reads back as a standard table.
	var blocks []struct {
		lastKey  []byte
		payload  []byte
		entries  int
		firstKey []byte
	}
	total := 0
	for b := 0; b < 10; b++ {
		w := NewBlockWriter(8)
		var first, last []byte
		n := 20
		for i := 0; i < n; i++ {
			ik := keys.MakeInternal(nil, []byte(fmt.Sprintf("key%02d-%03d", b, i)), uint64(total+1), keys.KindSet)
			w.Add(ik, []byte(fmt.Sprintf("v%d", total)))
			if first == nil {
				first = append([]byte(nil), ik...)
			}
			last = append(last[:0], ik...)
			total++
		}
		blocks = append(blocks, struct {
			lastKey  []byte
			payload  []byte
			entries  int
			firstKey []byte
		}{append([]byte(nil), last...), w.Finish(), n, first})
	}

	var buf bytes.Buffer
	a := NewAssembler(&buf, Options{FilterBitsPerKey: 10})
	for _, b := range blocks {
		if err := a.AddRawBlock(b.lastKey, byte(NoCompression), b.payload, b.entries); err != nil {
			t.Fatal(err)
		}
	}
	a.SetBounds(blocks[0].firstKey, blocks[len(blocks)-1].lastKey)
	stats, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != total {
		t.Fatalf("assembled entries = %d, want %d", stats.Entries, total)
	}

	r, err := NewReader(memFile(buf.Bytes()), int64(buf.Len()), Options{}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	it := r.NewIterator()
	n := 0
	var prev []byte
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if prev != nil && keys.Compare(prev, it.Key()) >= 0 {
			t.Fatal("assembled table out of order")
		}
		prev = append(prev[:0], it.Key()...)
		n++
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	if n != total {
		t.Fatalf("assembled table holds %d entries, want %d", n, total)
	}
	// Point lookups through the assembled index work at any position.
	for _, probe := range []string{"key00-000", "key05-010", "key09-019"} {
		v, _, ok, err := r.Get([]byte(probe), keys.MaxSeq)
		if err != nil || !ok {
			t.Fatalf("Get(%s) on assembled table: %v, %v", probe, ok, err)
		}
		_ = v
	}
}
