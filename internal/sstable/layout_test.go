package sstable

import "testing"

func TestLayout(t *testing.T) {
	for _, comp := range []Compression{NoCompression, SnappyCompression} {
		entries := seqEntries(500, 100)
		f, stats := buildTable(t, Options{Compression: comp, RestartInterval: 8}, entries)
		r, err := NewReader(f, int64(len(f)), Options{}, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		l, err := r.Layout()
		if err != nil {
			t.Fatal(err)
		}
		if len(l.Blocks) != stats.DataBlocks {
			t.Fatalf("%v: layout has %d blocks, writer reported %d", comp, len(l.Blocks), stats.DataBlocks)
		}
		if l.Entries != len(entries) {
			t.Fatalf("%v: layout counted %d entries, want %d", comp, l.Entries, len(entries))
		}
		var payload, content int64
		var restarts, total int
		for i, b := range l.Blocks {
			if b.Restarts < 1 {
				t.Fatalf("%v: block %d has %d restarts", comp, i, b.Restarts)
			}
			// Restart interval 8: every block needs a restart per 8 entries.
			if want := (b.Entries + 7) / 8; b.Restarts != want {
				t.Fatalf("%v: block %d: %d entries but %d restarts, want %d",
					comp, i, b.Entries, b.Restarts, want)
			}
			if b.ContentLen < b.PayloadLen && comp == NoCompression {
				t.Fatalf("block %d: decoded %d < stored %d without compression", i, b.ContentLen, b.PayloadLen)
			}
			payload += int64(b.PayloadLen)
			content += int64(b.ContentLen)
			restarts += b.Restarts
			total += b.Entries
		}
		if payload != l.PayloadBytes || content != l.ContentBytes || restarts != l.Restarts || total != l.Entries {
			t.Fatalf("%v: layout totals disagree with per-block sums", comp)
		}
		if comp == SnappyCompression && l.PayloadBytes >= l.ContentBytes {
			t.Fatalf("snappy: stored %d bytes not smaller than decoded %d", l.PayloadBytes, l.ContentBytes)
		}
	}
}

func TestCompressionString(t *testing.T) {
	cases := map[Compression]string{
		NoCompression:     "none",
		SnappyCompression: "snappy",
		Compression(7):    "unknown(7)",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Fatalf("Compression(%d).String() = %q, want %q", uint8(c), got, want)
		}
	}
}
