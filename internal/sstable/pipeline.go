package sstable

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"fcae/internal/crc"
	"fcae/internal/snappy"
)

// This file is the software analogue of the paper's encoder pipeline
// stage: completed data blocks leave the merge loop as raw contents and
// are compressed, checksummed and written by a small worker pool while
// the merge keeps running. The contract is strict byte-identity with the
// sequential Writer — same payload bytes, same file layout, same index —
// which pins three design points:
//
//   - ordering: blocks reach the file in submission order through a FIFO
//     hand-off to a single sequencer goroutine, which alone touches the
//     file and the writer's offset/handle state;
//   - rotation parity: the producer sizes tables from [SizeBounds]
//     bounds, falling back to a [SizeExact] barrier only when the
//     rotation threshold lands inside the bounds, so the producer makes
//     exactly the decisions the sequential path would;
//   - tail ordering: a table's filter/metaindex/index/footer are written
//     by the sequencer via the same finishTail the sequential Finish
//     uses, queued behind the table's last data block.

// EncodeStats snapshots the pipeline's stall and occupancy counters.
type EncodeStats struct {
	// Blocks counts data blocks pushed through the encode stage.
	Blocks int64
	// EncodeStalls counts blocks the sequencer had to wait on because no
	// encoder had finished them yet (encode stage is the bottleneck);
	// EncodeStallNanos is the summed wait.
	EncodeStalls     int64
	EncodeStallNanos int64
	// SubmitStalls counts producer-side waits for a free block buffer or
	// an order-queue slot (write/encode stages are the bottleneck);
	// SubmitStallNanos is the summed wait.
	SubmitStalls     int64
	SubmitStallNanos int64
	// SizeSyncs counts rotation decisions that had to drain in-flight
	// encodes because MaxOutputBytes fell inside the size bounds.
	SizeSyncs int64
}

// encTask carries one data block through encode and write. Tasks are
// pooled: the raw/cbuf scratch and the ready signal are reused across
// blocks (ready is a one-shot buffered token per trip, never closed).
type encTask struct {
	w       *Writer
	raw     []byte
	cbuf    []byte
	payload []byte
	trailer [BlockTrailerSize]byte
	rec     *blockRec
	ready   chan struct{}
}

// blockRec is the producer's size-accounting record for one in-flight
// block: enc holds payload+trailer bytes once the encoder resolves it
// (0 while in flight). The producer owns the record; the encoder's only
// touch is the single atomic store.
type blockRec struct {
	rawLen int
	enc    atomic.Int64
}

// seqItem is one FIFO hand-off to the sequencer: a data block, a table
// finish, or a size-sync barrier.
type seqItem struct {
	blk     *encTask
	fin     *finishReq
	barrier bool
}

// finishReq asks the sequencer to write a table's tail and close its
// file once every prior block of that table has been written.
type finishReq struct {
	w     *Writer
	reply chan AsyncFinish
}

// AsyncFinish resolves one FinishAsync call.
type AsyncFinish struct {
	Stats WriterStats
	Err   error
}

// EncodePipeline runs K encoder workers plus one sequencer over pooled
// block buffers. One pipeline serves every output table of a compaction
// in turn; Close flushes and joins the workers.
type EncodePipeline struct {
	compression Compression

	encodeq     chan *encTask
	orderq      chan seqItem
	free        chan *encTask
	barrierDone chan struct{}

	wg        sync.WaitGroup
	closeOnce sync.Once

	// recPool is the producer-side blockRec free list; only the producing
	// goroutine touches it.
	recPool []*blockRec

	blocks           atomic.Int64
	encodeStalls     atomic.Int64
	encodeStallNanos atomic.Int64
	submitStalls     atomic.Int64
	submitStallNanos atomic.Int64
	sizeSyncs        atomic.Int64

	failed   atomic.Bool
	errMu    sync.Mutex
	firstErr error
}

// NewEncodePipeline starts a pipeline with the given queue depth and
// encoder worker count (both clamped to >= 1) for tables compressed per
// opts. The caller must Close it.
func NewEncodePipeline(opts Options, depth, encoders int) *EncodePipeline {
	if depth < 1 {
		depth = 1
	}
	if encoders < 1 {
		encoders = 1
	}
	opts = opts.withDefaults()
	ntasks := depth + encoders + 2
	p := &EncodePipeline{
		compression: opts.Compression,
		encodeq:     make(chan *encTask, depth),
		orderq:      make(chan seqItem, depth+8),
		free:        make(chan *encTask, ntasks),
		barrierDone: make(chan struct{}, 1),
	}
	for i := 0; i < ntasks; i++ {
		p.free <- &encTask{ready: make(chan struct{}, 1)}
	}
	for i := 0; i < encoders; i++ {
		p.wg.Add(1)
		go p.encoderLoop()
	}
	p.wg.Add(1)
	go p.sequencerLoop()
	return p
}

// Close flushes every queued block and table tail, then joins the
// encoder and sequencer goroutines. Idempotent.
//
// NewEncodePipeline makes the two stage queues, but shutdown is Close's
// one job: closing them here is the designed hand-off, declared so
// chanflow holds every other close site to the owner rule.
//
//fcae:chan-owner sstable.EncodePipeline.encodeq
//fcae:chan-owner sstable.EncodePipeline.orderq
func (p *EncodePipeline) Close() {
	p.closeOnce.Do(func() {
		close(p.encodeq)
		close(p.orderq)
		p.wg.Wait()
	})
}

// Err returns the first write error observed by the sequencer, letting
// the producer abort a doomed merge early instead of discovering the
// failure at finish time.
func (p *EncodePipeline) Err() error {
	if !p.failed.Load() {
		return nil
	}
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.firstErr
}

func (p *EncodePipeline) noteErr(err error) {
	p.errMu.Lock()
	if p.firstErr == nil {
		p.firstErr = err
	}
	p.errMu.Unlock()
	p.failed.Store(true)
}

// Stats snapshots the stall/occupancy counters.
func (p *EncodePipeline) Stats() EncodeStats {
	return EncodeStats{
		Blocks:           p.blocks.Load(),
		EncodeStalls:     p.encodeStalls.Load(),
		EncodeStallNanos: p.encodeStallNanos.Load(),
		SubmitStalls:     p.submitStalls.Load(),
		SubmitStallNanos: p.submitStallNanos.Load(),
		SizeSyncs:        p.sizeSyncs.Load(),
	}
}

// encoderLoop is one encode-stage worker: compress (keeping compression
// only when it saves space, exactly as writeBlock does), checksum, and
// resolve the block's encoded size before signalling the sequencer.
//
//fcae:cycle-accounting
func (p *EncodePipeline) encoderLoop() {
	defer p.wg.Done()
	for t := range p.encodeq {
		contents := t.raw
		payload := contents
		ctype := byte(NoCompression)
		if p.compression == SnappyCompression {
			t.cbuf = snappy.Encode(t.cbuf[:0], contents)
			if len(t.cbuf) < len(contents)-len(contents)/8 {
				payload = t.cbuf
				ctype = byte(SnappyCompression)
			}
		}
		t.payload = payload
		t.trailer[0] = ctype
		sum := crc.Value(payload)
		sum = crc.Extend(sum, t.trailer[:1])
		binary.LittleEndian.PutUint32(t.trailer[1:], sum)
		if t.rec != nil {
			t.rec.enc.Store(int64(len(payload)) + BlockTrailerSize)
		}
		t.ready <- struct{}{}
	}
}

// sequencerLoop is the write stage: it drains the FIFO, writing blocks in
// submission order and table tails behind their last block, so the file
// bytes match the sequential writer exactly.
func (p *EncodePipeline) sequencerLoop() {
	defer p.wg.Done()
	for item := range p.orderq {
		switch {
		case item.blk != nil:
			p.writeSequenced(item.blk)
		case item.fin != nil:
			fr := item.fin
			stats, err := fr.w.finishOnSequencer()
			if cerr := fr.w.async.f.Close(); err == nil && cerr != nil {
				err = cerr
			}
			if err != nil {
				p.noteErr(err)
			}
			fr.reply <- AsyncFinish{Stats: stats, Err: err}
		case item.barrier:
			// Every block submitted before the barrier has been written —
			// and therefore resolved by its encoder — by the time the
			// token is handed back.
			p.barrierDone <- struct{}{}
		}
	}
}

// writeSequenced writes one encoded block and records its handle,
// mirroring writeBlock's offset accounting byte for byte.
func (p *EncodePipeline) writeSequenced(t *encTask) {
	select {
	case <-t.ready:
	default:
		p.encodeStalls.Add(1)
		start := time.Now()
		<-t.ready
		p.encodeStallNanos.Add(time.Since(start).Nanoseconds())
	}
	tw := t.w
	if tw.async.werr == nil {
		h := Handle{Offset: uint64(tw.offset), Size: uint64(len(t.payload))}
		if _, err := tw.w.Write(t.payload); err != nil {
			tw.async.werr = err
			p.noteErr(err)
		} else if _, err := tw.w.Write(t.trailer[:]); err != nil {
			tw.async.werr = err
			p.noteErr(err)
		} else {
			tw.offset += int64(len(t.payload)) + BlockTrailerSize
			tw.handles = append(tw.handles, h)
		}
	}
	t.w = nil
	t.payload = nil
	t.rec = nil
	p.free <- t
}

// newRec pools producer-side size records.
func (p *EncodePipeline) newRec(rawLen int) *blockRec {
	if n := len(p.recPool); n > 0 {
		r := p.recPool[n-1]
		p.recPool = p.recPool[:n-1]
		r.rawLen = rawLen
		r.enc.Store(0)
		return r
	}
	return &blockRec{rawLen: rawLen}
}

// asyncWriter is a Writer's attachment to an EncodePipeline.
type asyncWriter struct {
	pipe *EncodePipeline
	f    io.WriteCloser

	// Staging decouples block completion (inside Add, whose sync callers
	// may hold locks) from the blocking pipeline hand-off (PumpAsync, on
	// the producer's own stack): the finished builder is parked here and
	// a spare swapped in, so Add itself never touches a channel.
	stagedBuilder  *blockBuilder
	stagedContents []byte
	spare          *blockBuilder

	// Producer-side size accounting: base holds the exact bytes of every
	// resolved block; recs the still-in-flight ones.
	base int64
	recs []*blockRec

	// werr is this table's first write error; written and read only on
	// the sequencer goroutine.
	werr error
}

// NewWriterAsync returns a Writer whose data blocks are encoded and
// written by pipe. f receives the table bytes; the pipeline's sequencer
// closes it when the FinishAsync hand-off resolves (on abort — no
// FinishAsync — the caller closes f itself, after Close has joined the
// sequencer). Producer-side methods (Add, SizeBounds, SizeExact,
// FinishAsync) must all be called from one goroutine.
func NewWriterAsync(f io.WriteCloser, opts Options, pipe *EncodePipeline) *Writer {
	w := NewWriter(f, opts)
	w.async = &asyncWriter{pipe: pipe, f: f}
	return w
}

// stageAsync parks the completed block's builder and swaps in a fresh
// one so the writer can keep accepting entries. Channel-free by design:
// Add must never block (its sync callers may hold locks); the hand-off
// happens in PumpAsync.
func (w *Writer) stageAsync(contents []byte) {
	a := w.async
	if a.stagedBuilder != nil {
		w.err = fmt.Errorf("sstable: internal: async block staged twice without a pump")
		return
	}
	if a.spare == nil {
		//fcae:alloc-ok two builders alternate for the writer's lifetime; this is the one-time second
		a.spare = newBlockBuilder(w.opts.RestartInterval)
	}
	a.stagedBuilder = w.data
	a.stagedContents = contents
	w.data = a.spare
	a.spare = nil
}

// PumpAsync hands the staged data block, if any, to the encode pipeline.
// The producer calls it between Add calls; this is the only place the
// writer blocks on pipeline backpressure.
func (w *Writer) PumpAsync() {
	a := w.async
	if a == nil || a.stagedBuilder == nil {
		return
	}
	w.submitAsync(a.stagedContents)
	a.stagedBuilder.reset()
	a.spare = a.stagedBuilder
	a.stagedBuilder = nil
	a.stagedContents = nil
}

// submitAsync copies the completed block into a pooled task and hands it
// to the encode stage and, in the same order, to the sequencer.
func (w *Writer) submitAsync(contents []byte) {
	a := w.async
	p := a.pipe
	var t *encTask
	select {
	case t = <-p.free:
	default:
		p.submitStalls.Add(1)
		start := time.Now()
		t = <-p.free
		p.submitStallNanos.Add(time.Since(start).Nanoseconds())
	}
	t.w = w
	t.raw = append(t.raw[:0], contents...)
	if p.compression == SnappyCompression {
		// Snappy payload size is unknown until encoded: track a record so
		// SizeBounds can bracket it and SizeExact resolve it.
		t.rec = p.newRec(len(contents))
		a.recs = append(a.recs, t.rec)
	} else {
		// Uncompressed payloads have a known size: fold it immediately.
		a.base += int64(len(contents)) + BlockTrailerSize
	}
	p.blocks.Add(1)
	p.encodeq <- t
	select {
	case p.orderq <- seqItem{blk: t}:
	default:
		p.submitStalls.Add(1)
		start := time.Now()
		p.orderq <- seqItem{blk: t}
		p.submitStallNanos.Add(time.Since(start).Nanoseconds())
	}
}

// fold moves resolved in-flight blocks into the exact base, recycling
// their records.
func (a *asyncWriter) fold() {
	recs := a.recs
	kept := recs[:0]
	for _, r := range recs {
		if e := r.enc.Load(); e != 0 {
			a.base += e
			a.pipe.recPool = append(a.pipe.recPool, r)
		} else {
			kept = append(kept, r)
		}
	}
	for i := len(kept); i < len(recs); i++ {
		recs[i] = nil
	}
	a.recs = kept
}

// SizeBounds returns lower and upper bounds on what EstimatedSize would
// report at this point in sequential mode. The bounds collapse to the
// exact value once every in-flight block's encode has resolved (always,
// under NoCompression). A rotation threshold outside [lo, hi] can be
// decided without waiting; inside, use SizeExact.
func (w *Writer) SizeBounds() (lo, hi int64) {
	a := w.async
	if a == nil {
		sz := w.EstimatedSize()
		return sz, sz
	}
	a.fold()
	lo, hi = a.base, a.base
	for _, r := range a.recs {
		// The encoder keeps compression only when it saves space, so the
		// payload never exceeds the raw contents; the floor is snappy's
		// densest possible encoding.
		min := snappy.MinEncodedLen(r.rawLen)
		if min > r.rawLen {
			min = r.rawLen
		}
		lo += int64(min) + BlockTrailerSize
		hi += int64(r.rawLen) + BlockTrailerSize
	}
	if a.stagedBuilder != nil {
		n := len(a.stagedContents)
		min := n
		if w.opts.Compression == SnappyCompression {
			if m := snappy.MinEncodedLen(n); m < min {
				min = m
			}
		}
		lo += int64(min) + BlockTrailerSize
		hi += int64(n) + BlockTrailerSize
	}
	est := int64(w.data.estimatedSize())
	return lo + est, hi + est
}

// SizeExact returns exactly what EstimatedSize would report in
// sequential mode, draining in-flight encodes through a sequencer
// barrier when needed.
func (w *Writer) SizeExact() int64 {
	a := w.async
	if a == nil {
		return w.EstimatedSize()
	}
	w.PumpAsync()
	a.fold()
	if len(a.recs) > 0 {
		p := a.pipe
		p.sizeSyncs.Add(1)
		p.orderq <- seqItem{barrier: true}
		<-p.barrierDone
		a.fold()
	}
	return a.base + int64(w.data.estimatedSize())
}

// FinishAsync completes the table through the pipeline: the producer-side
// finishing (final block, final separator) happens inline, then the tail
// write and file close are queued behind the table's last data block. The
// returned channel resolves exactly once; the producer may immediately
// move on to its next output table.
func (w *Writer) FinishAsync() <-chan AsyncFinish {
	reply := make(chan AsyncFinish, 1)
	if w.async == nil {
		reply <- AsyncFinish{Stats: w.stats, Err: fmt.Errorf("sstable: FinishAsync on a synchronous writer (use Finish)")}
		return reply
	}
	if w.finished {
		reply <- AsyncFinish{Stats: w.stats, Err: fmt.Errorf("sstable: Finish called twice")}
		return reply
	}
	w.finished = true
	w.finishDataBlock()
	w.flushPendingIndex(nil)
	w.PumpAsync()
	w.async.pipe.orderq <- seqItem{fin: &finishReq{w: w, reply: reply}}
	return reply
}

// finishOnSequencer runs the tail write on the sequencer goroutine. The
// finish hand-off orders it after the producer's last touch of the
// writer, so reading the producer-side fields here is race-free.
func (w *Writer) finishOnSequencer() (WriterStats, error) {
	if w.err != nil {
		return w.stats, w.err
	}
	stats, err := w.finishTail()
	if err != nil && w.async.werr == nil {
		w.async.werr = err
	}
	return stats, err
}
