package sstable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"fcae/internal/bloom"
	"fcae/internal/cache"
	"fcae/internal/crc"
	"fcae/internal/keys"
	"fcae/internal/snappy"
)

// Reader provides random access to a finished table.
type Reader struct {
	f       io.ReaderAt
	size    int64
	opts    Options
	index   *block
	filter  []byte
	cache   *cache.Cache
	cacheID uint64
}

// NewReader opens the table stored in f. blockCache may be nil; cacheID
// must be unique per file when a cache is shared.
func NewReader(f io.ReaderAt, size int64, opts Options, blockCache *cache.Cache, cacheID uint64) (*Reader, error) {
	opts = opts.withDefaults()
	r := &Reader{f: f, size: size, opts: opts, cache: blockCache, cacheID: cacheID}
	if size < FooterSize {
		return nil, fmt.Errorf("%w: file of %d bytes has no footer", ErrCorrupt, size)
	}
	var fbuf [FooterSize]byte
	if _, err := f.ReadAt(fbuf[:], size-FooterSize); err != nil {
		return nil, err
	}
	footer, err := DecodeFooter(fbuf[:])
	if err != nil {
		return nil, err
	}
	idxContents, err := r.readBlockContents(footer.Index)
	if err != nil {
		return nil, err
	}
	if r.index, err = newBlock(idxContents, keys.Compare); err != nil {
		return nil, err
	}
	if err := r.loadFilter(footer.MetaIndex); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Reader) loadFilter(metaH Handle) error {
	if metaH.Size == 0 {
		return nil
	}
	contents, err := r.readBlockContents(metaH)
	if err != nil {
		return err
	}
	meta, err := newBlock(contents, bytes.Compare)
	if err != nil {
		return err
	}
	it := meta.iter()
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if bytes.HasPrefix(it.Key(), []byte("filter.")) {
			h, _, err := DecodeHandle(it.Value())
			if err != nil {
				return err
			}
			fb, err := r.readBlockContents(h)
			if err != nil {
				return err
			}
			r.filter = fb
			return nil
		}
	}
	return it.Error()
}

// readBlockContents reads, verifies and decompresses the block at h,
// consulting the block cache.
func (r *Reader) readBlockContents(h Handle) ([]byte, error) {
	if r.cache != nil {
		if v, ok := r.cache.Get(cache.Key{ID: r.cacheID, Offset: h.Offset}); ok {
			return v, nil
		}
	}
	raw := make([]byte, h.Size+BlockTrailerSize)
	if _, err := r.f.ReadAt(raw, int64(h.Offset)); err != nil {
		return nil, err
	}
	payload := raw[:h.Size]
	trailer := raw[h.Size:]
	sum := crc.Value(payload)
	sum = crc.Extend(sum, trailer[:1])
	if sum != binary.LittleEndian.Uint32(trailer[1:]) {
		return nil, fmt.Errorf("%w: block checksum mismatch at offset %d", ErrCorrupt, h.Offset)
	}
	var contents []byte
	switch Compression(trailer[0]) {
	case NoCompression:
		contents = payload
	case SnappyCompression:
		var err error
		contents, err = snappy.Decode(nil, payload)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	default:
		return nil, fmt.Errorf("%w: unknown compression %d", ErrCorrupt, trailer[0])
	}
	if r.cache != nil {
		r.cache.Set(cache.Key{ID: r.cacheID, Offset: h.Offset}, contents)
	}
	return contents, nil
}

// MayContain consults the table bloom filter for a user key. It returns
// true when no filter is present. The stored filter is self-describing
// (probe count in its trailing byte), so no policy — and in particular no
// bits-per-key guess — is needed at read time.
func (r *Reader) MayContain(userKey []byte) bool {
	if r.filter == nil {
		return true
	}
	return bloom.MayContain(r.filter, userKey)
}

// Get returns the value for the newest entry of userKey visible at seq.
func (r *Reader) Get(userKey []byte, seq uint64) (value []byte, deleted, found bool, err error) {
	if !r.MayContain(userKey) {
		return nil, false, false, nil
	}
	lookup := keys.MakeInternal(nil, userKey, seq, keys.KindSet)
	it := r.NewIterator()
	it.SeekGE(lookup)
	if err := it.Error(); err != nil {
		return nil, false, false, err
	}
	if !it.Valid() {
		return nil, false, false, nil
	}
	ik := it.Key()
	if keys.CompareUser(keys.UserKey(ik), userKey) != 0 {
		return nil, false, false, nil
	}
	_, kind := keys.DecodeTrailer(ik)
	if kind == keys.KindDelete {
		return nil, true, true, nil
	}
	return append([]byte(nil), it.Value()...), false, true, nil
}

// Iterator is a two-level iterator over the table's index and data blocks.
type Iterator struct {
	r     *Reader
	index *blockIter
	data  *blockIter
	err   error
}

// NewIterator returns an unpositioned iterator over the table.
func (r *Reader) NewIterator() *Iterator {
	return &Iterator{r: r, index: r.index.iter()}
}

// loadData opens the data block referenced by the current index entry.
func (it *Iterator) loadData() bool {
	it.data = nil
	if !it.index.Valid() {
		return false
	}
	h, _, err := DecodeHandle(it.index.Value())
	if err != nil {
		it.err = err
		return false
	}
	contents, err := it.r.readBlockContents(h)
	if err != nil {
		it.err = err
		return false
	}
	b, err := newBlock(contents, keys.Compare)
	if err != nil {
		it.err = err
		return false
	}
	it.data = b.iter()
	return true
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool {
	return it.err == nil && it.data != nil && it.data.Valid()
}

// Key returns the current internal key.
func (it *Iterator) Key() []byte { return it.data.Key() }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.data.Value() }

// Error returns the first error encountered.
func (it *Iterator) Error() error {
	if it.err != nil {
		return it.err
	}
	if it.data != nil && it.data.Error() != nil {
		return it.data.Error()
	}
	return it.index.Error()
}

// SeekGE positions at the first entry with internal key >= target.
func (it *Iterator) SeekGE(target []byte) {
	it.index.SeekGE(target)
	if !it.loadData() {
		return
	}
	it.data.SeekGE(target)
	it.skipForwardEmpty()
}

// SeekToFirst positions at the table's first entry.
func (it *Iterator) SeekToFirst() {
	it.index.SeekToFirst()
	if !it.loadData() {
		return
	}
	it.data.SeekToFirst()
	it.skipForwardEmpty()
}

// SeekToLast positions at the table's final entry.
func (it *Iterator) SeekToLast() {
	it.index.SeekToLast()
	if !it.loadData() {
		return
	}
	it.data.SeekToLast()
	it.skipBackwardEmpty()
}

// Next advances to the following entry, crossing block boundaries.
func (it *Iterator) Next() {
	if it.data == nil {
		return
	}
	it.data.Next()
	it.skipForwardEmpty()
}

// Prev steps to the preceding entry, crossing block boundaries.
func (it *Iterator) Prev() {
	if it.data == nil {
		return
	}
	it.data.Prev()
	it.skipBackwardEmpty()
}

func (it *Iterator) skipForwardEmpty() {
	for it.err == nil && (it.data == nil || !it.data.Valid()) {
		if it.data != nil && it.data.Error() != nil {
			it.err = it.data.Error()
			return
		}
		it.index.Next()
		if !it.index.Valid() {
			it.data = nil
			return
		}
		if !it.loadData() {
			return
		}
		it.data.SeekToFirst()
	}
}

func (it *Iterator) skipBackwardEmpty() {
	for it.err == nil && (it.data == nil || !it.data.Valid()) {
		if it.data != nil && it.data.Error() != nil {
			it.err = it.data.Error()
			return
		}
		it.index.Prev()
		if !it.index.Valid() {
			it.data = nil
			return
		}
		if !it.loadData() {
			return
		}
		it.data.SeekToLast()
	}
}
