package sstable

import (
	"encoding/binary"
	"fmt"

	"fcae/internal/snappy"
)

// BlockLayout describes one data block's physical shape: the structures
// the engine's Decoder walks (paper §II-B), decoded from the stored block
// rather than reconstructed ad hoc by tooling.
type BlockLayout struct {
	// IndexKey is the index entry's separator key for the block.
	IndexKey []byte
	// Compression is the codec recorded in the block trailer.
	Compression Compression
	// PayloadLen is the stored (possibly compressed) byte count.
	PayloadLen int
	// ContentLen is the decoded block contents' byte count, including
	// the restart array.
	ContentLen int
	// Restarts is the number of restart points in the decoded block.
	Restarts int
	// Entries is the number of key-value entries in the block.
	Entries int
}

// Layout summarizes a table's data-block structure.
type Layout struct {
	// Blocks lists every data block in index order.
	Blocks []BlockLayout
	// PayloadBytes sums stored data-block payload bytes.
	PayloadBytes int64
	// ContentBytes sums decoded data-block content bytes.
	ContentBytes int64
	// Restarts sums restart points across blocks.
	Restarts int
	// Entries sums entries across blocks.
	Entries int
}

// Layout decodes every data block and returns the table's typed layout
// summary.
func (r *Reader) Layout() (Layout, error) {
	var l Layout
	err := r.VisitRawBlocks(func(b RawBlock) error {
		contents := b.Payload
		if Compression(b.CType) == SnappyCompression {
			var err error
			if contents, err = snappy.Decode(nil, b.Payload); err != nil {
				return fmt.Errorf("%w: block %d: %v", ErrCorrupt, len(l.Blocks), err)
			}
		}
		if len(contents) < 4 {
			return fmt.Errorf("%w: block %d: %d-byte contents", ErrCorrupt, len(l.Blocks), len(contents))
		}
		restarts := int(binary.LittleEndian.Uint32(contents[len(contents)-4:]))
		if restarts < 1 || len(contents) < 4+4*restarts {
			return fmt.Errorf("%w: block %d: bad restart count %d", ErrCorrupt, len(l.Blocks), restarts)
		}
		entries := 0
		it, err := NewBlockIter(contents)
		if err != nil {
			return err
		}
		for it.SeekToFirst(); it.Valid(); it.Next() {
			entries++
		}
		if err := it.Error(); err != nil {
			return err
		}
		l.Blocks = append(l.Blocks, BlockLayout{
			IndexKey:    b.IndexKey,
			Compression: Compression(b.CType),
			PayloadLen:  len(b.Payload),
			ContentLen:  len(contents),
			Restarts:    restarts,
			Entries:     entries,
		})
		l.PayloadBytes += int64(len(b.Payload))
		l.ContentBytes += int64(len(contents))
		l.Restarts += restarts
		l.Entries += entries
		return nil
	})
	return l, err
}
