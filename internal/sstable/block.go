package sstable

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// blockBuilder assembles one block of prefix-compressed entries:
//
//	shared   uvarint // bytes shared with the previous key
//	unshared uvarint
//	vlen     uvarint
//	key suffix, value
//
// followed by the uint32 restart offsets and their count. Keys are fully
// stored at every restart point so iterators can binary-search restarts.
type blockBuilder struct {
	restartInterval int
	buf             []byte
	restarts        []uint32
	counter         int
	lastKey         []byte
	entries         int
}

func newBlockBuilder(restartInterval int) *blockBuilder {
	b := &blockBuilder{restartInterval: restartInterval}
	b.reset()
	return b
}

func (b *blockBuilder) reset() {
	b.buf = b.buf[:0]
	b.restarts = append(b.restarts[:0], 0)
	b.counter = 0
	b.lastKey = b.lastKey[:0]
	b.entries = 0
}

func (b *blockBuilder) empty() bool { return len(b.buf) == 0 }

// estimatedSize returns the finished-block size if finish were called now.
func (b *blockBuilder) estimatedSize() int {
	return len(b.buf) + 4*len(b.restarts) + 4
}

// add appends an entry; keys must arrive in strictly increasing order.
func (b *blockBuilder) add(key, value []byte) {
	shared := 0
	if b.counter < b.restartInterval {
		n := len(b.lastKey)
		if len(key) < n {
			n = len(key)
		}
		for shared < n && b.lastKey[shared] == key[shared] {
			shared++
		}
	} else {
		b.restarts = append(b.restarts, uint32(len(b.buf)))
		b.counter = 0
	}
	var tmp [binary.MaxVarintLen32]byte
	b.buf = append(b.buf, tmp[:binary.PutUvarint(tmp[:], uint64(shared))]...)
	b.buf = append(b.buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(key)-shared))]...)
	b.buf = append(b.buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(value)))]...)
	b.buf = append(b.buf, key[shared:]...)
	b.buf = append(b.buf, value...)
	b.lastKey = append(b.lastKey[:0], key...)
	b.counter++
	b.entries++
}

// finish appends the restart array and returns the complete block contents.
func (b *blockBuilder) finish() []byte {
	var tmp [4]byte
	for _, r := range b.restarts {
		binary.LittleEndian.PutUint32(tmp[:], r)
		b.buf = append(b.buf, tmp[:]...)
	}
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(b.restarts)))
	return append(b.buf, tmp[:]...)
}

// block wraps decoded block contents for iteration.
type block struct {
	data       []byte
	restarts   []uint32
	restartOff int
	cmp        func(a, b []byte) int
}

func newBlock(contents []byte, cmp func(a, b []byte) int) (*block, error) {
	b := &block{cmp: cmp}
	if err := b.reset(contents); err != nil {
		return nil, err
	}
	return b, nil
}

// reset re-points the block at new contents, reusing the restart array's
// capacity so a block parsed per data block in the engine's decode loop
// amortizes to zero steady-state allocation.
func (b *block) reset(contents []byte) error {
	if len(contents) < 4 {
		return fmt.Errorf("%w: block too small", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(contents[len(contents)-4:]))
	restartOff := len(contents) - 4 - 4*n
	if n < 1 || restartOff < 0 {
		return fmt.Errorf("%w: bad restart count %d", ErrCorrupt, n)
	}
	b.restarts = b.restarts[:0]
	for i := 0; i < n; i++ {
		b.restarts = append(b.restarts, binary.LittleEndian.Uint32(contents[restartOff+4*i:]))
	}
	b.data = contents[:restartOff]
	b.restartOff = restartOff
	return nil
}

// blockIter iterates over a decoded block.
type blockIter struct {
	b     *block
	off   int // offset of the NEXT entry to decode
	key   []byte
	val   []byte
	valid bool
	err   error
}

func (b *block) iter() *blockIter { return &blockIter{b: b} }

func (it *blockIter) Valid() bool   { return it.valid && it.err == nil }
func (it *blockIter) Key() []byte   { return it.key }
func (it *blockIter) Value() []byte { return it.val }
func (it *blockIter) Error() error  { return it.err }

// parseNext decodes the entry at it.off, updating key/val.
func (it *blockIter) parseNext() bool {
	if it.off >= len(it.b.data) {
		it.valid = false
		return false
	}
	data := it.b.data[it.off:]
	// Check each varint before slicing past it: Uvarint returns a NEGATIVE
	// count on 64-bit overflow, which would poison the next slice index.
	shared, n0 := binary.Uvarint(data)
	if n0 <= 0 {
		it.corrupt("bad entry header")
		return false
	}
	unshared, n1 := binary.Uvarint(data[n0:])
	if n1 <= 0 {
		it.corrupt("bad entry header")
		return false
	}
	vlen, n2 := binary.Uvarint(data[n0+n1:])
	if n2 <= 0 {
		it.corrupt("bad entry header")
		return false
	}
	hdr := n0 + n1 + n2
	// Compare in uint64 space before converting: a hostile uvarint can
	// exceed MaxInt, and int(x) would flip negative and slip past the
	// bounds checks below.
	if shared > uint64(len(it.key)) || unshared > uint64(len(data)) || vlen > uint64(len(data)) {
		it.corrupt("entry overruns block")
		return false
	}
	if hdr+int(unshared)+int(vlen) > len(data) {
		it.corrupt("entry overruns block")
		return false
	}
	it.key = append(it.key[:shared], data[hdr:hdr+int(unshared)]...)
	it.val = data[hdr+int(unshared) : hdr+int(unshared)+int(vlen)]
	it.off += hdr + int(unshared) + int(vlen)
	it.valid = true
	return true
}

func (it *blockIter) corrupt(msg string) {
	//fcae:alloc-ok corruption path: fires at most once, then iteration is dead
	it.err = fmt.Errorf("%w: %s", ErrCorrupt, msg)
	it.valid = false
}

// SeekToFirst positions at the first entry.
func (it *blockIter) SeekToFirst() {
	it.off = 0
	it.key = it.key[:0]
	it.parseNext()
}

// Next advances to the following entry.
func (it *blockIter) Next() {
	if it.err != nil {
		return
	}
	it.parseNext()
}

// SeekGE positions at the first entry with key >= target, binary-searching
// the restart array and then scanning.
func (it *blockIter) SeekGE(target []byte) {
	if it.err != nil {
		return
	}
	// Find the last restart whose key < target.
	i := sort.Search(len(it.b.restarts), func(i int) bool {
		k, ok := it.b.keyAtRestart(i)
		if !ok {
			return true
		}
		return it.b.cmp(k, target) >= 0
	})
	if i > 0 {
		i--
	}
	it.off = int(it.b.restarts[i])
	it.key = it.key[:0]
	for it.parseNext() {
		if it.b.cmp(it.key, target) >= 0 {
			return
		}
	}
}

// SeekToLast positions at the final entry.
func (it *blockIter) SeekToLast() {
	it.off = int(it.b.restarts[len(it.b.restarts)-1])
	it.key = it.key[:0]
	for it.parseNext() {
		if it.off >= len(it.b.data) {
			return
		}
	}
}

// Prev steps backwards by rescanning from the nearest earlier restart.
func (it *blockIter) Prev() {
	if it.err != nil || !it.valid {
		return
	}
	// Offset where the current entry started is unknown; rescan from the
	// restart before the current position and stop one entry short.
	cur := append([]byte(nil), it.key...)
	i := sort.Search(len(it.b.restarts), func(i int) bool {
		k, ok := it.b.keyAtRestart(i)
		if !ok {
			return true
		}
		return it.b.cmp(k, cur) >= 0
	})
	if i == 0 {
		it.valid = false
		return
	}
	it.off = int(it.b.restarts[i-1])
	it.key = it.key[:0]
	var prevKey, prevVal []byte
	found := false
	for it.parseNext() {
		if it.b.cmp(it.key, cur) >= 0 {
			break
		}
		prevKey = append(prevKey[:0], it.key...)
		prevVal = it.val
		found = true
	}
	if !found {
		it.valid = false
		return
	}
	it.key = append(it.key[:0], prevKey...)
	it.val = prevVal
	it.valid = true
}

// keyAtRestart decodes the full key stored at restart index i.
func (b *block) keyAtRestart(i int) ([]byte, bool) {
	off := int(b.restarts[i])
	if off >= len(b.data) {
		return nil, false
	}
	data := b.data[off:]
	shared, n0 := binary.Uvarint(data)
	if n0 <= 0 {
		return nil, false
	}
	unshared, n1 := binary.Uvarint(data[n0:])
	if n1 <= 0 {
		return nil, false
	}
	_, n2 := binary.Uvarint(data[n0+n1:])
	if n2 <= 0 || shared != 0 || unshared > uint64(len(data)) {
		return nil, false
	}
	hdr := n0 + n1 + n2
	if hdr+int(unshared) > len(data) {
		return nil, false
	}
	return data[hdr : hdr+int(unshared)], true
}
