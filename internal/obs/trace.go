package obs

import (
	"encoding/json"
	"errors"
	"io"
	"sync"
	"time"
)

// Trace accumulates phase spans for one compaction job. The store creates
// a Trace per job; the executor and the apply path add spans as phases
// complete (open_runs → merge → flush_table per output → manifest_apply;
// the FCAE executor adds build_images for the device-image serialization).
// A nil *Trace is safe: StartSpan returns a no-op closure, so executors
// instrument unconditionally.
type Trace struct {
	start time.Time

	mu    sync.Mutex
	spans []Span
}

// Span is one recorded phase: Start is the offset from the trace origin.
type Span struct {
	Phase string        `json:"phase"`
	Start time.Duration `json:"start_nanos"`
	Dur   time.Duration `json:"dur_nanos"`
}

// NewTrace returns a trace whose origin is now.
func NewTrace() *Trace { return &Trace{start: time.Now()} }

// StartSpan begins timing a phase; calling the returned closure records
// the span. Dropping the closure (e.g. on an error path) records nothing.
func (t *Trace) StartSpan(phase string) func() {
	if t == nil {
		return func() {}
	}
	begin := time.Now()
	return func() {
		end := time.Now()
		t.mu.Lock()
		t.spans = append(t.spans, Span{Phase: phase, Start: begin.Sub(t.start), Dur: end.Sub(begin)})
		t.mu.Unlock()
	}
}

// AddSpan records an already-measured phase of duration d ending now,
// for stages whose time is accumulated across many small waits (the
// pipelined compactor's per-stage stall totals) rather than bracketed by
// a single StartSpan closure. A nil *Trace is safe.
func (t *Trace) AddSpan(phase string, d time.Duration) {
	if t == nil {
		return
	}
	end := time.Now()
	begin := end.Add(-d)
	t.mu.Lock()
	t.spans = append(t.spans, Span{Phase: phase, Start: begin.Sub(t.start), Dur: d})
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in completion order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// TraceRecord is the JSONL form of one finished compaction, written by
// TraceWriter: one line per job, durations in nanoseconds.
type TraceRecord struct {
	Job         uint64      `json:"job"`
	Level       int         `json:"level"`
	OutputLevel int         `json:"output_level"`
	Executor    string      `json:"executor,omitempty"`
	TrivialMove bool        `json:"trivial_move,omitempty"`
	Fallback    bool        `json:"sw_fallback,omitempty"`
	Lane        Lane        `json:"lane,omitempty"`
	RouteReason RouteReason `json:"route_reason,omitempty"`
	// Priority is omitted for PriorityDeep (the zero value): an absent
	// field decodes as a deep-level job.
	Priority      Priority `json:"priority,omitempty"`
	DeviceTries   int      `json:"device_attempts,omitempty"`
	Inputs        []uint64 `json:"inputs,omitempty"`
	Outputs       []uint64 `json:"outputs,omitempty"`
	PairsIn       int      `json:"pairs_in"`
	PairsOut      int      `json:"pairs_out"`
	PairsDropped  int      `json:"pairs_dropped"`
	BytesRead     int64    `json:"bytes_read"`
	BytesWritten  int64    `json:"bytes_written"`
	KernelNanos   int64    `json:"kernel_nanos"`
	TransferNanos int64    `json:"transfer_nanos"`
	WallNanos     int64    `json:"wall_nanos"`
	Error         string   `json:"error,omitempty"`
	Spans         []Span   `json:"spans,omitempty"`
}

// NewTraceRecord flattens a CompactionEnd event into its JSONL form.
func NewTraceRecord(e CompactionEndEvent) TraceRecord {
	rec := TraceRecord{
		Job:           e.JobID,
		Level:         e.Level,
		OutputLevel:   e.OutputLevel,
		Executor:      e.Executor,
		TrivialMove:   e.TrivialMove,
		Fallback:      e.Fallback,
		Lane:          e.Lane,
		RouteReason:   e.RouteReason,
		Priority:      e.Priority,
		DeviceTries:   e.DeviceAttempts,
		PairsIn:       e.PairsIn,
		PairsOut:      e.PairsOut,
		PairsDropped:  e.PairsDropped,
		BytesRead:     e.BytesRead,
		BytesWritten:  e.BytesWritten,
		KernelNanos:   e.KernelTime.Nanoseconds(),
		TransferNanos: e.TransferTime.Nanoseconds(),
		WallNanos:     e.Wall.Nanoseconds(),
		Spans:         e.Trace.Spans(),
	}
	for _, t := range e.Inputs {
		rec.Inputs = append(rec.Inputs, t.Num)
	}
	for _, t := range e.Outputs {
		rec.Outputs = append(rec.Outputs, t.Num)
	}
	if e.Err != nil {
		rec.Error = e.Err.Error()
	}
	return rec
}

// TraceWriter is an EventListener that writes one TraceRecord JSON line
// per finished compaction, the `dbbench -trace out.jsonl` format. It
// ignores every other event; combine it with other listeners via
// MultiListener. Safe for concurrent use.
type TraceWriter struct {
	NoopListener

	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewTraceWriter returns a TraceWriter appending to w. The caller owns w
// and closes it after the database is closed.
func NewTraceWriter(w io.Writer) *TraceWriter { return &TraceWriter{w: w} }

// CompactionEnd implements EventListener.
func (tw *TraceWriter) CompactionEnd(e CompactionEndEvent) {
	line, err := json.Marshal(NewTraceRecord(e))
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.err != nil {
		return
	}
	if err != nil {
		tw.err = err
		return
	}
	if _, err := tw.w.Write(append(line, '\n')); err != nil {
		tw.err = err
	}
}

// Err returns the first marshal or write error, if any.
func (tw *TraceWriter) Err() error {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	return tw.err
}

// ErrListenerPanic marks a BackgroundError produced by a recovered
// listener panic (Op == "listener").
var ErrListenerPanic = errors.New("obs: listener panicked")
