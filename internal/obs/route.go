package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// Lane identifies which dispatch lane completed a merge. The zero value
// (LaneNone) means "not dispatched" — trivial moves and pre-dispatch
// configurations — and renders as the empty string, so JSON fields tagged
// omitempty keep the exact schema of the old stringly-typed field.
//
// Positive values are device channels: DeviceLane(i) is channel i and
// renders as "device-<i>". LaneCPU is the host fallback lane.
type Lane int

// Lane values. Device channels are constructed with DeviceLane.
const (
	// LaneNone is the zero value: the job was not dispatched (trivial
	// move, or a store with no scheduler route recorded).
	LaneNone Lane = 0
	// LaneCPU is the host software lane.
	LaneCPU Lane = -1
)

// DeviceLane returns the Lane for device channel i (0-based).
func DeviceLane(i int) Lane { return Lane(i + 1) }

// IsDevice reports whether the lane is a device channel.
func (l Lane) IsDevice() bool { return l > 0 }

// Device returns the 0-based device channel index, and whether the lane
// is a device channel at all.
func (l Lane) Device() (int, bool) {
	if l > 0 {
		return int(l) - 1, true
	}
	return 0, false
}

// String implements fmt.Stringer, producing the wire strings the events
// and traces always used: "", "cpu", "device-<i>".
func (l Lane) String() string {
	switch {
	case l == LaneNone:
		return ""
	case l == LaneCPU:
		return "cpu"
	default:
		return "device-" + strconv.Itoa(int(l)-1)
	}
}

// MarshalJSON encodes the lane as its wire string.
func (l Lane) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, l.String()), nil
}

// UnmarshalJSON decodes the wire strings produced by MarshalJSON, so
// trace records round-trip through JSONL sinks.
func (l *Lane) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("obs: lane: %w", err)
	}
	switch {
	case s == "":
		*l = LaneNone
	case s == "cpu":
		*l = LaneCPU
	case strings.HasPrefix(s, "device-"):
		i, err := strconv.Atoi(s[len("device-"):])
		if err != nil || i < 0 {
			return fmt.Errorf("obs: bad device lane %q", s)
		}
		*l = DeviceLane(i)
	default:
		return fmt.Errorf("obs: unknown lane %q", s)
	}
	return nil
}

// RouteReason explains why the scheduler routed a job to the CPU lane.
// The zero value (RouteNone) means the job ran on a device and renders
// as the empty string, matching the old stringly-typed field under an
// omitempty JSON tag.
type RouteReason int

// Route reasons, in admission order (paper §VI-A plus the arena and
// saturation rules this implementation adds).
const (
	// RouteNone: no CPU routing — the job completed on a device.
	RouteNone RouteReason = iota
	// RouteNoDevice: the store has no device channels configured.
	RouteNoDevice
	// RouteFanIn: the job's run count exceeds the engine's input width.
	RouteFanIn
	// RouteImageBudget: the serialized input images exceed the device
	// image budget.
	RouteImageBudget
	// RouteArena: the job's input bytes exceed the per-channel
	// device-memory arena, either at admission (sized check) or at run
	// time (the builder exhausted the staging region).
	RouteArena
	// RouteSaturated: every device queue slot was full at submission.
	RouteSaturated
	// RouteDeviceFault: device attempts exhausted the retry budget.
	RouteDeviceFault
)

// String implements fmt.Stringer, producing the wire strings used by
// events, traces and DispatchStats.
func (r RouteReason) String() string {
	switch r {
	case RouteNone:
		return ""
	case RouteNoDevice:
		return "no-device"
	case RouteFanIn:
		return "fanin"
	case RouteImageBudget:
		return "image-budget"
	case RouteArena:
		return "arena"
	case RouteSaturated:
		return "saturated"
	case RouteDeviceFault:
		return "device-fault"
	}
	return "unknown"
}

// MarshalJSON encodes the reason as its wire string.
func (r RouteReason) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, r.String()), nil
}

// UnmarshalJSON decodes the wire strings produced by MarshalJSON.
func (r *RouteReason) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("obs: route reason: %w", err)
	}
	for c := RouteNone; c <= RouteDeviceFault; c++ {
		if c.String() == s {
			*r = c
			return nil
		}
	}
	return fmt.Errorf("obs: unknown route reason %q", s)
}

// Priority is a job's dispatch lane priority. The zero value is
// PriorityDeep (deep-level compactions); PriorityL0 marks flush-driven
// L0 jobs, which the scheduler dequeues first.
type Priority int

// Priorities, low to high.
const (
	// PriorityDeep is the default priority for deep-level compactions.
	PriorityDeep Priority = iota
	// PriorityL0 marks L0/flush-driven jobs that gate foreground writes.
	PriorityL0
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case PriorityDeep:
		return "deep"
	case PriorityL0:
		return "l0"
	}
	return "unknown"
}

// MarshalJSON encodes the priority as its string form. Absent fields
// (omitempty) decode as the zero value PriorityDeep.
func (p Priority) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, p.String()), nil
}

// UnmarshalJSON decodes the wire strings produced by MarshalJSON.
func (p *Priority) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("obs: priority: %w", err)
	}
	switch s {
	case "deep":
		*p = PriorityDeep
	case "l0":
		*p = PriorityL0
	default:
		return fmt.Errorf("obs: unknown priority %q", s)
	}
	return nil
}
