// Package obs is the store's observability layer: typed events delivered
// to a user EventListener, a dependency-free metrics registry with typed
// snapshots, and per-compaction trace spans. It sits below every other
// package (stdlib imports only) so that lsm, compaction and core can all
// publish into it without import cycles.
//
// Delivery contract: the database sequences events under its central
// mutex (so listeners observe the same order the state machine executed)
// but invokes listener methods strictly OUTSIDE any database lock, one
// event at a time. Listener implementations may therefore call quick
// read-side methods such as DB.Stats or DB.Metrics, but must not invoke
// blocking operations (Flush, CompactLevel, Close) — those wait on the
// background workers that are busy delivering the event. Because delivery
// happens outside the lock, an event may be observed shortly after the
// state change it describes; the order is still exact.
//
// A panicking listener is recovered by the database and surfaced as a
// BackgroundError event rather than crashing the background worker.
package obs

import "time"

// EventListener receives store lifecycle events. Embed NoopListener to
// remain forward-compatible as events are added.
type EventListener interface {
	// FlushBegin fires when an immutable memtable starts flushing to L0.
	FlushBegin(FlushBeginEvent)
	// FlushEnd fires when the flush finished (or failed; see Err).
	FlushEnd(FlushEndEvent)
	// CompactionBegin fires when a merge compaction (or trivial move) is
	// scheduled, before any input bytes are read.
	CompactionBegin(CompactionBeginEvent)
	// CompactionEnd fires when the compaction's version edit is applied
	// (or the job failed; see Err). It carries the full job breakdown,
	// including the modeled kernel and PCIe transfer time and the trace.
	CompactionEnd(CompactionEndEvent)
	// WriteStallBegin fires when a foreground write begins throttling.
	WriteStallBegin(WriteStallBeginEvent)
	// WriteStallEnd fires when the stalled write resumes.
	WriteStallEnd(WriteStallEndEvent)
	// TableCreated fires after a flush or compaction output table becomes
	// part of the live version.
	TableCreated(TableCreatedEvent)
	// TableDeleted fires after an obsolete table file is removed.
	TableDeleted(TableDeletedEvent)
	// BackgroundError fires when a background worker hits an error (the
	// database stops scheduling background work) or when a listener
	// callback panicked (Op == "listener"; the store keeps running).
	BackgroundError(BackgroundErrorEvent)
}

// TableInfo identifies one table file in an event.
type TableInfo struct {
	Num   uint64 `json:"num"`
	Level int    `json:"level"`
	Size  int64  `json:"size"`
}

// FlushBeginEvent announces an immutable memtable flush.
type FlushBeginEvent struct {
	JobID uint64
	// MemTableBytes is the approximate size of the memtable being flushed.
	MemTableBytes int64
}

// FlushEndEvent reports a finished flush.
type FlushEndEvent struct {
	JobID uint64
	// Output is the L0 table written; Num == 0 when the memtable was
	// empty and no table was produced.
	Output TableInfo
	// Wall is the flush duration (build + manifest apply).
	Wall time.Duration
	// Err is non-nil when the flush failed; the store stops background
	// work with this error.
	Err error
}

// CompactionBeginEvent announces a scheduled compaction.
type CompactionBeginEvent struct {
	JobID uint64
	// Level is the source level; output lands on OutputLevel.
	Level       int
	OutputLevel int
	// TrivialMove marks a pure file move (no merge executes).
	TrivialMove bool
	// Priority is the dispatch priority the job was enqueued with
	// (PriorityL0 for L0-source jobs, PriorityDeep otherwise).
	Priority Priority
	// Inputs are the tables consumed, across both levels.
	Inputs []TableInfo
}

// CompactionEndEvent reports a finished compaction with the breakdown the
// paper's evaluation is built on (Tables II/III): merge work, modeled
// engine kernel time and PCIe transfer time, and the phase trace.
type CompactionEndEvent struct {
	JobID       uint64
	Level       int
	OutputLevel int
	TrivialMove bool
	// Executor is the backend that ran the merge ("cpu" or "fcae"); empty
	// for trivial moves.
	Executor string
	// Fallback is set when the job was routed to the CPU lane despite
	// device channels being configured (paper §VI-A fan-in overflow, queue
	// backpressure, image budget, or device fault).
	Fallback bool
	// Lane is the dispatch lane that completed the merge (a device
	// channel or LaneCPU); LaneNone for trivial moves and pre-dispatch
	// configurations.
	Lane Lane
	// RouteReason explains a CPU routing (RouteFanIn, RouteImageBudget,
	// RouteArena, RouteSaturated, RouteDeviceFault, RouteNoDevice);
	// RouteNone when the job ran on a device.
	RouteReason RouteReason
	// Priority is the dispatch priority the job was enqueued with.
	Priority Priority
	// DeviceAttempts counts device-lane attempts, including faulted ones.
	DeviceAttempts int
	Inputs         []TableInfo
	Outputs        []TableInfo
	// PairsIn/PairsOut/PairsDropped count key-value pairs merged and
	// dropped by the shadowing rules.
	PairsIn      int
	PairsOut     int
	PairsDropped int
	BytesRead    int64
	BytesWritten int64
	// KernelTime is the modeled merge time (device cycles for the FCAE
	// executor); TransferTime is the modeled PCIe time.
	KernelTime   time.Duration
	TransferTime time.Duration
	// Wall is the real elapsed time of the whole job.
	Wall time.Duration
	// Trace records the job's phase spans (open_runs, merge, flush_table,
	// manifest_apply, ...). Nil for jobs that failed before tracing.
	Trace *Trace
	// Err is non-nil when the job failed.
	Err error
}

// StallReason says why a foreground write throttled.
type StallReason int

// Stall reasons, mirroring LevelDB's three write-throttle rules.
const (
	// StallL0Slowdown is the 1ms soft slowdown when L0 backs up.
	StallL0Slowdown StallReason = iota
	// StallMemTableFull waits for the previous memtable flush.
	StallMemTableFull
	// StallL0Stop is the hard stop at the L0 file-count limit.
	StallL0Stop
)

// String implements fmt.Stringer.
func (r StallReason) String() string {
	switch r {
	case StallL0Slowdown:
		return "l0-slowdown"
	case StallMemTableFull:
		return "memtable-full"
	case StallL0Stop:
		return "l0-stop"
	}
	return "unknown"
}

// WriteStallBeginEvent announces a foreground write throttle.
type WriteStallBeginEvent struct {
	Reason StallReason
}

// WriteStallEndEvent reports the end of a write throttle.
type WriteStallEndEvent struct {
	Reason   StallReason
	Duration time.Duration
}

// TableCreatedEvent reports a new live table file.
type TableCreatedEvent struct {
	// JobID is the flush or compaction that produced the table.
	JobID uint64
	Table TableInfo
}

// TableDeletedEvent reports removal of an obsolete table file.
type TableDeletedEvent struct {
	Num uint64
}

// BackgroundErrorEvent reports a background failure. Op is "flush",
// "compaction" or "listener" (a recovered listener panic).
type BackgroundErrorEvent struct {
	Op  string
	Err error
}

// NoopListener implements EventListener with empty methods. Embed it so
// a listener only overrides the events it cares about and stays
// compatible when new events are added.
type NoopListener struct{}

// FlushBegin implements EventListener.
func (NoopListener) FlushBegin(FlushBeginEvent) {}

// FlushEnd implements EventListener.
func (NoopListener) FlushEnd(FlushEndEvent) {}

// CompactionBegin implements EventListener.
func (NoopListener) CompactionBegin(CompactionBeginEvent) {}

// CompactionEnd implements EventListener.
func (NoopListener) CompactionEnd(CompactionEndEvent) {}

// WriteStallBegin implements EventListener.
func (NoopListener) WriteStallBegin(WriteStallBeginEvent) {}

// WriteStallEnd implements EventListener.
func (NoopListener) WriteStallEnd(WriteStallEndEvent) {}

// TableCreated implements EventListener.
func (NoopListener) TableCreated(TableCreatedEvent) {}

// TableDeleted implements EventListener.
func (NoopListener) TableDeleted(TableDeletedEvent) {}

// BackgroundError implements EventListener.
func (NoopListener) BackgroundError(BackgroundErrorEvent) {}

// MultiListener fans every event out to each listener in order.
type MultiListener []EventListener

// FlushBegin implements EventListener.
func (m MultiListener) FlushBegin(e FlushBeginEvent) {
	for _, l := range m {
		l.FlushBegin(e)
	}
}

// FlushEnd implements EventListener.
func (m MultiListener) FlushEnd(e FlushEndEvent) {
	for _, l := range m {
		l.FlushEnd(e)
	}
}

// CompactionBegin implements EventListener.
func (m MultiListener) CompactionBegin(e CompactionBeginEvent) {
	for _, l := range m {
		l.CompactionBegin(e)
	}
}

// CompactionEnd implements EventListener.
func (m MultiListener) CompactionEnd(e CompactionEndEvent) {
	for _, l := range m {
		l.CompactionEnd(e)
	}
}

// WriteStallBegin implements EventListener.
func (m MultiListener) WriteStallBegin(e WriteStallBeginEvent) {
	for _, l := range m {
		l.WriteStallBegin(e)
	}
}

// WriteStallEnd implements EventListener.
func (m MultiListener) WriteStallEnd(e WriteStallEndEvent) {
	for _, l := range m {
		l.WriteStallEnd(e)
	}
}

// TableCreated implements EventListener.
func (m MultiListener) TableCreated(e TableCreatedEvent) {
	for _, l := range m {
		l.TableCreated(e)
	}
}

// TableDeleted implements EventListener.
func (m MultiListener) TableDeleted(e TableDeletedEvent) {
	for _, l := range m {
		l.TableDeleted(e)
	}
}

// BackgroundError implements EventListener.
func (m MultiListener) BackgroundError(e BackgroundErrorEvent) {
	for _, l := range m {
		l.BackgroundError(e)
	}
}

// MetricsPublisher is implemented by components (e.g. the FCAE engine
// executor) that can register gauges into a Registry.
type MetricsPublisher interface {
	PublishMetrics(*Registry)
}
