package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("writes")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("writes") != c {
		t.Fatal("Counter did not return the same instrument for the same name")
	}
	g := r.Gauge("ratio")
	g.Set(0.75)
	if got := g.Value(); got != 0.75 {
		t.Fatalf("gauge = %g, want 0.75", got)
	}
	r.GaugeFunc("files", func() float64 { return 3 })

	m := r.Snapshot()
	if m.Counters["writes"] != 5 {
		t.Fatalf("snapshot counter = %d, want 5", m.Counters["writes"])
	}
	if m.Gauges["ratio"] != 0.75 || m.Gauges["files"] != 3 {
		t.Fatalf("snapshot gauges = %v", m.Gauges)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{-1, 0, 1, 2, 3, 4, 1 << 40} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	wantSum := int64(-1 + 0 + 1 + 2 + 3 + 4 + (1 << 40))
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	// Buckets: <=0 (two), [1,2) (one), [2,4) (two), [4,8) (one), [2^40,2^41) (one).
	want := []HistogramBucket{
		{Low: 0, High: 0, Count: 2},
		{Low: 1, High: 2, Count: 1},
		{Low: 2, High: 4, Count: 2},
		{Low: 4, High: 8, Count: 1},
		{Low: 1 << 40, High: 1 << 41, Count: 1},
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	for i := range want {
		if s.Buckets[i] != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, s.Buckets[i], want[i])
		}
	}
	if got := s.Quantile(0.5); got != 4 {
		t.Fatalf("p50 = %d, want 4 (upper bound of the bucket holding obs #4)", got)
	}
	if got := s.Quantile(1); got != 1<<41 {
		t.Fatalf("p100 = %d, want %d", got, int64(1)<<41)
	}
	if mean := s.Mean(); mean != float64(wantSum)/7 {
		t.Fatalf("mean = %g", mean)
	}
}

func TestHistogramDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(3 * time.Microsecond)
	s := h.snapshot()
	if s.Sum != 3000 || s.Count != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(1)
	r.GaugeFunc("f", func() float64 { return 1 })
	m := r.Snapshot()
	if len(m.Counters) != 0 || len(m.Gauges) != 0 || len(m.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", m)
	}
}

func TestMetricsEncoders(t *testing.T) {
	r := NewRegistry()
	r.Counter("writes").Add(2)
	r.Gauge("ratio").Set(0.5)
	r.Histogram("lat").Observe(3)
	m := r.Snapshot()

	var buf bytes.Buffer
	if err := m.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"writes 2\n", "ratio 0.5\n", "lat.count 1\n", "lat.sum 3\n", "lat.p50 4\n"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text output missing %q:\n%s", want, text)
		}
	}
	// Output must be sorted.
	lines := strings.Split(strings.TrimSpace(text), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] {
			t.Fatalf("text output not sorted: %q after %q", lines[i], lines[i-1])
		}
	}

	raw, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded Metrics
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Counters["writes"] != 2 || decoded.Gauges["ratio"] != 0.5 {
		t.Fatalf("JSON round-trip = %+v", decoded)
	}
	if h := decoded.Histograms["lat"]; h.Count != 1 || h.Sum != 3 {
		t.Fatalf("JSON histogram = %+v", h)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(int64(j))
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestTraceSpans(t *testing.T) {
	var nilTrace *Trace
	nilTrace.StartSpan("merge")() // must not panic
	if nilTrace.Spans() != nil {
		t.Fatal("nil trace returned spans")
	}

	tr := NewTrace()
	end := tr.StartSpan("open_runs")
	time.Sleep(time.Millisecond)
	end()
	tr.StartSpan("merge")()
	_ = tr.StartSpan("dropped") // closure never called: no span recorded

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %+v, want 2", spans)
	}
	if spans[0].Phase != "open_runs" || spans[1].Phase != "merge" {
		t.Fatalf("phases = %q, %q", spans[0].Phase, spans[1].Phase)
	}
	if spans[0].Dur < time.Millisecond {
		t.Fatalf("open_runs dur = %v, want >= 1ms", spans[0].Dur)
	}
	if spans[1].Start < spans[0].Start {
		t.Fatalf("span starts out of order: %v before %v", spans[1].Start, spans[0].Start)
	}
}

func TestTraceWriterJSONL(t *testing.T) {
	tr := NewTrace()
	tr.StartSpan("merge")()

	ev := CompactionEndEvent{
		JobID:        7,
		Level:        1,
		OutputLevel:  2,
		Executor:     "fcae",
		Inputs:       []TableInfo{{Num: 3, Level: 1, Size: 100}, {Num: 4, Level: 2, Size: 200}},
		Outputs:      []TableInfo{{Num: 5, Level: 2, Size: 250}},
		PairsIn:      10,
		PairsOut:     8,
		PairsDropped: 2,
		BytesRead:    300,
		BytesWritten: 250,
		KernelTime:   2 * time.Microsecond,
		TransferTime: 3 * time.Microsecond,
		Wall:         time.Millisecond,
		Trace:        tr,
	}

	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.CompactionEnd(ev)
	tw.CompactionEnd(CompactionEndEvent{JobID: 8, Err: errors.New("boom")})
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	var recs []TraceRecord
	for sc.Scan() {
		var rec TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	r0 := recs[0]
	if r0.Job != 7 || r0.Executor != "fcae" || r0.KernelNanos != 2000 || r0.TransferNanos != 3000 {
		t.Fatalf("record 0 = %+v", r0)
	}
	if len(r0.Inputs) != 2 || r0.Inputs[0] != 3 || len(r0.Outputs) != 1 || r0.Outputs[0] != 5 {
		t.Fatalf("record 0 tables = %+v / %+v", r0.Inputs, r0.Outputs)
	}
	if len(r0.Spans) != 1 || r0.Spans[0].Phase != "merge" {
		t.Fatalf("record 0 spans = %+v", r0.Spans)
	}
	if recs[1].Error != "boom" {
		t.Fatalf("record 1 error = %q", recs[1].Error)
	}
}

type recordingListener struct {
	NoopListener
	flushes int
}

func (l *recordingListener) FlushBegin(FlushBeginEvent) { l.flushes++ }

func TestMultiListener(t *testing.T) {
	a, b := &recordingListener{}, &recordingListener{}
	var ml EventListener = MultiListener{a, b}
	ml.FlushBegin(FlushBeginEvent{JobID: 1})
	ml.FlushEnd(FlushEndEvent{JobID: 1})
	if a.flushes != 1 || b.flushes != 1 {
		t.Fatalf("fan-out = %d, %d, want 1, 1", a.flushes, b.flushes)
	}
}

func TestStallReasonString(t *testing.T) {
	cases := map[StallReason]string{
		StallL0Slowdown:   "l0-slowdown",
		StallMemTableFull: "memtable-full",
		StallL0Stop:       "l0-stop",
		StallReason(99):   "unknown",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", r, got, want)
		}
	}
}
