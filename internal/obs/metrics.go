package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time value that can move in both directions.
type Gauge struct{ v atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// histBuckets is the fixed log2 bucket count: bucket 0 holds values <= 0,
// bucket i (1..64) holds values whose bit length is i, i.e. the range
// [2^(i-1), 2^i).
const histBuckets = 65

// Histogram accumulates int64 observations into fixed log2 buckets. All
// methods are safe for concurrent use and allocation-free.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
	}
	h.counts[idx].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// snapshot renders the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := 0; i < histBuckets; i++ {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		var lo, hi int64
		if i > 0 {
			lo = int64(1) << (i - 1)
			if i < 64 {
				hi = int64(1) << i
			} else {
				hi = math.MaxInt64
			}
		}
		s.Buckets = append(s.Buckets, HistogramBucket{Low: lo, High: hi, Count: n})
	}
	return s
}

// HistogramBucket is one populated log2 bucket: values in [Low, High).
type HistogramBucket struct {
	Low   int64 `json:"low"`
	High  int64 `json:"high"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Mean returns the average observation, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) from
// the bucket boundaries: the High edge of the bucket holding the q-th
// observation.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			return b.High
		}
	}
	return s.Buckets[len(s.Buckets)-1].High
}

// Registry is a named collection of counters, gauges and histograms. The
// zero value is not usable; call NewRegistry. A nil *Registry is safe:
// every getter returns a detached, functional instrument, so library code
// can publish unconditionally.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() float64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. On a nil registry it returns a detached counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return new(Counter)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. On a nil registry it returns a detached gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers fn as a callback gauge evaluated at snapshot time.
// fn must be safe to call from any goroutine and must not call back into
// this registry. A nil registry ignores the registration.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// Histogram returns the histogram registered under name, creating it on
// first use. On a nil registry it returns a detached histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return new(Histogram)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = new(Histogram)
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every instrument into a typed Metrics value. Gauge
// callbacks are invoked AFTER the registry lock is released, so a
// callback may block on component locks without risking deadlock against
// concurrent publishers.
func (r *Registry) Snapshot() Metrics {
	m := Metrics{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return m
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	fns := make(map[string]func() float64, len(r.gaugeFns))
	for k, v := range r.gaugeFns {
		fns[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for k, c := range counters {
		m.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		m.Gauges[k] = g.Value()
	}
	for k, fn := range fns {
		m.Gauges[k] = fn()
	}
	for k, h := range hists {
		m.Histograms[k] = h.snapshot()
	}
	return m
}

// Metrics is a typed point-in-time snapshot of a Registry.
type Metrics struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// JSON renders the snapshot as indented JSON, the machine-readable form
// used by `dbbench -metrics` and `ycsb -metrics`.
func (m Metrics) JSON() ([]byte, error) { return json.MarshalIndent(m, "", "  ") }

// WriteText renders the snapshot as sorted expvar-style "name value"
// lines. Histograms expand to name.count, name.sum, name.p50, name.p99.
func (m Metrics) WriteText(w io.Writer) error {
	lines := make([]string, 0, len(m.Counters)+len(m.Gauges)+4*len(m.Histograms))
	for k, v := range m.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, v := range m.Gauges {
		lines = append(lines, fmt.Sprintf("%s %g", k, v))
	}
	for k, h := range m.Histograms {
		lines = append(lines,
			fmt.Sprintf("%s.count %d", k, h.Count),
			fmt.Sprintf("%s.sum %d", k, h.Sum),
			fmt.Sprintf("%s.p50 %d", k, h.Quantile(0.5)),
			fmt.Sprintf("%s.p99 %d", k, h.Quantile(0.99)),
		)
	}
	sort.Strings(lines)
	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
