package sim

import (
	"testing"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var s Sim
	var order []int
	s.After(30*time.Millisecond, func() { order = append(order, 3) })
	s.After(10*time.Millisecond, func() { order = append(order, 1) })
	s.After(20*time.Millisecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("final time %v", s.Now())
	}
}

func TestTiesRunInScheduleOrder(t *testing.T) {
	var s Sim
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var s Sim
	var fired []time.Duration
	s.After(time.Second, func() {
		fired = append(fired, s.Now())
		s.After(2*time.Second, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 3*time.Second {
		t.Fatalf("fired = %v", fired)
	}
}

func TestNegativeDelayRunsNow(t *testing.T) {
	var s Sim
	s.After(time.Second, func() {
		s.After(-5*time.Second, func() {
			if s.Now() != time.Second {
				t.Errorf("negative delay ran at %v", s.Now())
			}
		})
	})
	s.Run()
}

func TestStepAndPending(t *testing.T) {
	var s Sim
	if s.Step() {
		t.Fatal("Step on empty queue should return false")
	}
	s.After(time.Millisecond, func() {})
	s.After(time.Millisecond, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	if !s.Step() || s.Pending() != 1 {
		t.Fatal("Step did not consume one event")
	}
}
