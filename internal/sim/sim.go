// Package sim provides a minimal deterministic discrete-event simulator:
// a virtual clock and an event queue. The lsmsim package builds the
// store-level model for the paper's end-to-end experiments on top of it.
package sim

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tie-breaker for determinism
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Sim is a virtual-time event loop. The zero value is ready to use.
type Sim struct {
	now time.Duration
	h   eventHeap
	seq uint64
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// After schedules fn to run delay from now. Negative delays run "now".
func (s *Sim) After(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.h, &event{at: s.now + delay, seq: s.seq, fn: fn})
}

// Step runs the next event, returning false when the queue is empty.
func (s *Sim) Step() bool {
	if len(s.h) == 0 {
		return false
	}
	e := heap.Pop(&s.h).(*event)
	s.now = e.at
	e.fn()
	return true
}

// Run drains the event queue.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// Pending returns the number of scheduled events.
func (s *Sim) Pending() int { return len(s.h) }
