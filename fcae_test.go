package fcae_test

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"fcae"
)

func TestPublicAPIQuickstart(t *testing.T) {
	db, err := fcae.Open(t.TempDir(), fcae.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if err := db.Put([]byte("greeting"), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("greeting"))
	if err != nil || string(v) != "hello" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := db.Delete([]byte("greeting")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("greeting")); err != fcae.ErrNotFound {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestPublicAPIWithEngine(t *testing.T) {
	opts := fcae.Options{
		Executor:           fcae.MustNewEngineExecutor(fcae.MultiInputEngineConfig()),
		MemTableBytes:      32 << 10,
		BaseLevelBytes:     128 << 10,
		MaxOutputFileBytes: 32 << 10,
	}
	db, err := fcae.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	val := bytes.Repeat([]byte("v"), 100)
	for i := 0; i < 3000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key%06d", i%2000)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.HWCompactions == 0 {
		t.Fatalf("engine executor ran no hardware compactions: %+v", st)
	}
	got, err := db.Get([]byte("key000042"))
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("Get after engine compactions: %v", err)
	}
}

func TestPublicAPIBatchAndIterator(t *testing.T) {
	db, err := fcae.Open(t.TempDir(), fcae.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var b fcae.Batch
	for i := 0; i < 10; i++ {
		b.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%02d", i)))
	}
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n := 0
	for ok := it.First(); ok; ok = it.Next() {
		n++
	}
	if n != 10 {
		t.Fatalf("iterated %d keys, want 10", n)
	}
}

func TestEngineConfigResources(t *testing.T) {
	cfg := fcae.DefaultEngineConfig()
	u := cfg.Resources()
	if u.LUT <= 0 || u.LUT > 100 {
		t.Fatalf("2-input engine should fit the chip: %+v", u)
	}
	big := cfg
	big.N, big.WIn, big.V = 9, 64, 8
	if big.Fits() {
		t.Fatal("N=9 at full AXI width must not fit (paper Table VII: 206% LUT)")
	}
	if _, err := fcae.NewEngineExecutor(fcae.EngineConfig{N: 1}); err == nil {
		t.Fatal("invalid engine config accepted")
	}
}

func TestSnapshotAPI(t *testing.T) {
	db, err := fcae.Open(t.TempDir(), fcae.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Put([]byte("k"), []byte("v1"))
	snap := db.NewSnapshot()
	defer snap.Release()
	db.Put([]byte("k"), []byte("v2"))
	v, err := snap.Get([]byte("k"))
	if err != nil || string(v) != "v1" {
		t.Fatalf("snapshot Get = %q, %v", v, err)
	}
}

func TestPublicAPITieredMode(t *testing.T) {
	opts := fcae.Options{
		TieredRuns:         4,
		MemTableBytes:      32 << 10,
		BaseLevelBytes:     128 << 10,
		MaxOutputFileBytes: 32 << 10,
		Executor:           fcae.MustNewEngineExecutor(fcae.MultiInputEngineConfig()),
	}
	db, err := fcae.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	val := bytes.Repeat([]byte("t"), 100)
	for i := 0; i < 4000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key%05d", i%1500)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.HWCompactions == 0 {
		t.Fatalf("tiered merges should run on the engine: %+v", st)
	}
	v, err := db.Get([]byte("key00042"))
	if err != nil || !bytes.Equal(v, val) {
		t.Fatalf("Get: %v", err)
	}
}

func TestPublicAPIRepairAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, err := fcae.Open(dir, fcae.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("k"), []byte("v"))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	cp := t.TempDir() + "/cp"
	if err := db.Checkpoint(cp); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// Wipe metadata and repair.
	os.Remove(dir + "/CURRENT")
	if err := fcae.Repair(dir, fcae.Options{}); err != nil {
		t.Fatal(err)
	}
	db2, err := fcae.Open(dir, fcae.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, err := db2.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("repaired Get = %q, %v", v, err)
	}
	db3, err := fcae.Open(cp, fcae.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if v, err := db3.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("checkpoint Get = %q, %v", v, err)
	}
}
