package fcae_test

import (
	"fmt"
	"log"
	"os"

	"fcae"
)

// Example shows the minimal open/put/get cycle.
func Example() {
	dir, _ := os.MkdirTemp("", "fcae-example-")
	defer os.RemoveAll(dir)

	db, err := fcae.Open(dir, fcae.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Put([]byte("hello"), []byte("world"))
	v, _ := db.Get([]byte("hello"))
	fmt.Println(string(v))
	// Output: world
}

// ExampleOpen_engine opens a store whose compactions run on the simulated
// FCAE engine (the paper's 9-input configuration).
func ExampleOpen_engine() {
	dir, _ := os.MkdirTemp("", "fcae-example-")
	defer os.RemoveAll(dir)

	cfg := fcae.MultiInputEngineConfig()
	db, err := fcae.Open(dir, fcae.Options{
		Executor: fcae.MustNewEngineExecutor(cfg),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	fmt.Printf("engine lanes: %d, fits chip: %v\n", cfg.N, cfg.Fits())
	// Output: engine lanes: 9, fits chip: true
}

// ExampleDB_NewIterator scans a key range in both directions.
func ExampleDB_NewIterator() {
	dir, _ := os.MkdirTemp("", "fcae-example-")
	defer os.RemoveAll(dir)
	db, _ := fcae.Open(dir, fcae.Options{})
	defer db.Close()

	for _, k := range []string{"b", "a", "c"} {
		db.Put([]byte(k), []byte("v-"+k))
	}
	it, _ := db.NewIterator()
	defer it.Close()
	for ok := it.First(); ok; ok = it.Next() {
		fmt.Printf("%s ", it.Key())
	}
	for ok := it.Last(); ok; ok = it.Prev() {
		fmt.Printf("%s ", it.Key())
	}
	fmt.Println()
	// Output: a b c c b a
}

// ExampleBatch commits several writes atomically.
func ExampleBatch() {
	dir, _ := os.MkdirTemp("", "fcae-example-")
	defer os.RemoveAll(dir)
	db, _ := fcae.Open(dir, fcae.Options{})
	defer db.Close()

	var b fcae.Batch
	b.Put([]byte("x"), []byte("1"))
	b.Put([]byte("y"), []byte("2"))
	b.Delete([]byte("x"))
	db.Write(&b)

	_, errX := db.Get([]byte("x"))
	y, _ := db.Get([]byte("y"))
	fmt.Println(errX == fcae.ErrNotFound, string(y))
	// Output: true 2
}

// flushLogger counts flush events. Embedding NoopListener keeps it
// compiling as new event kinds are added.
type flushLogger struct {
	fcae.NoopListener
	begins, ends, tables int
}

func (f *flushLogger) FlushBegin(fcae.FlushBeginEvent) { f.begins++ }
func (f *flushLogger) FlushEnd(fcae.FlushEndEvent)     { f.ends++ }
func (f *flushLogger) TableCreated(fcae.TableCreatedEvent) {
	f.tables++
}

// ExampleDB_listener observes a flush through an EventListener and reads
// the matching counter from the metrics registry. Events are delivered
// outside the store's locks; Flush returning guarantees the listener has
// seen the flush's events.
func ExampleDB_listener() {
	dir, _ := os.MkdirTemp("", "fcae-example-")
	defer os.RemoveAll(dir)

	logger := &flushLogger{}
	db, err := fcae.Open(dir, fcae.Options{EventListener: logger})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Put([]byte("hello"), []byte("world"))
	db.Flush()

	m := db.Metrics()
	fmt.Printf("flush begin/end: %d/%d, tables created: %d, flush_count: %d\n",
		logger.begins, logger.ends, logger.tables, m.Counters["flush_count"])
	// Output: flush begin/end: 1/1, tables created: 1, flush_count: 1
}

// ExampleEngineConfig_Resources estimates chip utilization for a
// configuration, as in the paper's Table VII.
func ExampleEngineConfig_Resources() {
	cfg := fcae.MultiInputEngineConfig() // N=9, WIn=8, V=8
	u := cfg.Resources()
	fmt.Printf("BRAM %.0f%% FF %.0f%% LUT %.0f%%\n", u.BRAM, u.FF, u.LUT)
	// Output: BRAM 25% FF 14% LUT 85%
}
