// Top-level benchmarks: one per table and figure of the paper's evaluation
// (§VII). Each benchmark regenerates its experiment through the harness in
// internal/bench and logs the resulting rows; absolute numbers come from
// the calibrated models (DESIGN.md), so the interesting output is the
// report itself, not ns/op. Reduced data scales keep `go test -bench=.`
// quick; run `go run ./cmd/experiments` for the paper's full sizes.
package fcae_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"fcae"
	"fcae/internal/bench"
	"fcae/internal/compaction"
	"fcae/internal/core"
	"fcae/internal/keys"
	"fcae/internal/sstable"
	"fcae/internal/workload"
)

// benchScale keeps bench runs quick; cmd/experiments runs Full scale.
const benchScale = bench.Quick

func logReports(b *testing.B, reports ...*bench.Report) {
	b.Helper()
	for _, r := range reports {
		b.Logf("\n%s", r.String())
	}
}

// BenchmarkTableV_Fig9 regenerates Table V (2-input compaction speed, CPU
// vs FCAE across value lengths and V) and Fig 9 (acceleration ratios).
func BenchmarkTableV_Fig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tv, f9 := bench.TableV(benchScale)
		if i == 0 {
			logReports(b, tv, f9)
		}
	}
}

// BenchmarkTableVI_Fig11 regenerates Table VI (random-write throughput vs
// value length and V) and Fig 11 (ratios).
func BenchmarkTableVI_Fig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tv, f11 := bench.TableVI(benchScale)
		if i == 0 {
			logReports(b, tv, f11)
		}
	}
}

// BenchmarkFig10 regenerates the 2-input data-size sweep.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig10(benchScale)
		if i == 0 {
			logReports(b, r)
		}
	}
}

// BenchmarkTableVII regenerates the resource-utilization table.
func BenchmarkTableVII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.TableVII()
		if i == 0 {
			logReports(b, r)
		}
	}
}

// BenchmarkFig12_13 regenerates the 2-input vs 9-input comparison.
func BenchmarkFig12_13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f12, f13 := bench.Fig12And13(benchScale)
		if i == 0 {
			logReports(b, f12, f13)
		}
	}
}

// BenchmarkFig14_TableVIII regenerates the multi-input size sweep and the
// PCIe transfer percentages (bounded to 16 GB simulated here; the command
// line tool sweeps to 1 TB).
func BenchmarkFig14_TableVIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f14, t8 := bench.Fig14(benchScale, 16)
		if i == 0 {
			logReports(b, f14, t8)
		}
	}
}

// BenchmarkFig15 regenerates the sensitivity study (key length, value
// length, block size, leveling ratio).
func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig15(benchScale)
		if i == 0 {
			logReports(b, r)
		}
	}
}

// BenchmarkFig16 regenerates the YCSB workload comparison.
func BenchmarkFig16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig16(benchScale)
		if i == 0 {
			logReports(b, r)
		}
	}
}

// BenchmarkAblations regenerates the design-choice ablations called out in
// DESIGN.md: key-value separation, index/data separation, and the
// flush/compaction overlap schedule.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := bench.Ablations(benchScale)
		s := bench.ScheduleAblation(benchScale)
		if i == 0 {
			logReports(b, a, s)
		}
	}
}

// ---------------------------------------------------------------------------
// Wall-clock micro-benchmarks of the real store (this Go implementation on
// the local machine, not the paper's models).

func benchDB(b *testing.B, opts fcae.Options) *fcae.DB {
	b.Helper()
	db, err := fcae.Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

// BenchmarkStorePut measures foreground write latency of the real store.
func BenchmarkStorePut(b *testing.B) {
	db := benchDB(b, fcae.Options{})
	keys := workload.NewKeyGen(16)
	values := workload.NewValueGen(128, 0.5, 1)
	b.SetBytes(16 + 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put(keys.Key(uint64(i)), values.Value()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreGet measures point reads over a compacted store.
func BenchmarkStoreGet(b *testing.B) {
	db := benchDB(b, fcae.Options{})
	keys := workload.NewKeyGen(16)
	values := workload.NewValueGen(128, 0.5, 1)
	const n = 100_000
	for i := 0; i < n; i++ {
		if err := db.Put(keys.Key(uint64(i)), values.Value()); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := db.CompactLevel(0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get(keys.Key(uint64(i % n))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompactionExecutors compares the real wall-clock cost of the
// software executor and the engine executor (which performs the same merge
// plus device-image building) on an L0-shaped job.
func BenchmarkCompactionExecutors(b *testing.B) {
	for _, backend := range []string{"cpu", "fcae"} {
		b.Run(backend, func(b *testing.B) {
			opts := fcae.Options{
				MemTableBytes:      256 << 10,
				BaseLevelBytes:     1 << 20,
				MaxOutputFileBytes: 256 << 10,
			}
			if backend == "fcae" {
				opts.Executor = fcae.MustNewEngineExecutor(fcae.MultiInputEngineConfig())
			}
			keys := workload.NewKeyGen(16)
			values := workload.NewValueGen(256, 0.5, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := benchDB(b, opts)
				b.StartTimer()
				for j := 0; j < 20_000; j++ {
					if err := db.Put(keys.Key(uint64(j*7%20000)), values.Value()); err != nil {
						b.Fatal(err)
					}
				}
				if err := db.WaitIdle(); err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					st := db.Stats()
					b.Logf("%s: compactions=%d hw=%d kernel=%v pcie=%v",
						backend, st.Compactions, st.HWCompactions, st.KernelTime, st.TransferTime)
				}
			}
		})
	}
}

// BenchmarkEngineKernel measures the simulator's own wall-clock throughput
// (how fast the functional engine merges on this machine) — relevant for
// how long the paper-scale experiments take to simulate.
func BenchmarkEngineKernel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		start := time.Now()
		tv, _ := bench.TableV(bench.Scale(0.05))
		if i == 0 {
			b.Logf("tableV at 5%% scale took %v; first row: %v", time.Since(start), tv.Rows[0])
		}
	}
}

var _ = fmt.Sprintf // keep fmt for report helpers

// ---------------------------------------------------------------------------
// Merge-path allocation budget. hotalloc keeps the //fcae:cycle-accounting
// kernel free of per-iteration allocation statically; this pins the same
// property dynamically so a regression shows up as a number, not a review
// comment.

type memReaderAt []byte

func (m memReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n := copy(p, m[off:])
	if n < len(p) {
		return n, fmt.Errorf("short read")
	}
	return n, nil
}

// engineMergeInputs builds two sorted 4000-key runs as device input images.
func engineMergeInputs(tb testing.TB, cfg core.Config) []*core.InputImage {
	tb.Helper()
	opts := sstable.Options{Compression: sstable.SnappyCompression}
	images := make([]*core.InputImage, 2)
	for r := 0; r < 2; r++ {
		var buf bytes.Buffer
		w := sstable.NewWriter(&buf, opts)
		for i := 0; i < 4000; i++ {
			ikey := keys.MakeInternal(nil, []byte(fmt.Sprintf("run%d-%08d", r, i*3)), uint64(r*100000+i), keys.KindSet)
			if err := w.Add(ikey, bytes.Repeat([]byte{byte(i)}, 128)); err != nil {
				tb.Fatal(err)
			}
		}
		if _, err := w.Finish(); err != nil {
			tb.Fatal(err)
		}
		data := buf.Bytes()
		img, err := core.BuildInputImage([]compaction.Table{{
			Num:  uint64(r + 1),
			Size: int64(len(data)),
			Data: memReaderAt(data),
		}}, cfg.WIn, opts)
		if err != nil {
			tb.Fatal(err)
		}
		images[r] = img
	}
	return images
}

func runEngineMerge(tb testing.TB, eng *core.Engine, images []*core.InputImage) {
	runEngineMergeArena(tb, eng, images, nil)
}

func runEngineMergeArena(tb testing.TB, eng *core.Engine, images []*core.InputImage, arena *core.Arena) {
	tb.Helper()
	arena.Reset()
	res, err := eng.Run(images, core.Params{
		Compress:         true,
		SmallestSnapshot: keys.MaxSeq,
		BottomLevel:      true,
		Arena:            arena,
	})
	if err != nil {
		tb.Fatal(err)
	}
	if res.Stats.PairsOut != 8000 {
		tb.Fatalf("merged %d pairs, want 8000", res.Stats.PairsOut)
	}
}

// BenchmarkEngineMerge measures the functional merge kernel itself —
// allocs/op is the headline number (see TestEngineMergeAllocsBudget).
// The arena variant retains merge output in a per-channel staging arena,
// the executor's default.
func BenchmarkEngineMerge(b *testing.B) {
	cfg := core.DefaultConfig()
	eng, err := core.NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	images := engineMergeInputs(b, cfg)
	b.Run("heap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runEngineMerge(b, eng, images)
		}
	})
	b.Run("arena", func(b *testing.B) {
		arena := core.NewArena(cfg.ArenaBytes())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runEngineMergeArena(b, eng, images, arena)
		}
	})
}

// TestEngineMergeAllocsBudget pins the merge path's allocs/op, with and
// without an output arena. The seed tree measured 2261 allocs/op on this
// workload; the scratch-reuse work (persistent block iterators, pooled
// FIFO history, single-copy block flush) brought it down, and this budget
// keeps it from creeping back. The arena path must fit the same budget:
// arena-backed retention replaces heap copies one for one.
func TestEngineMergeAllocsBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed budget; skipped in -short")
	}
	cfg := core.DefaultConfig()
	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	images := engineMergeInputs(t, cfg)
	// The seed tree measured 2261 allocs/op; scratch reuse brought it to
	// 890. The budget sits just above that with headroom for runtime
	// variance — tight enough that reintroducing even one per-block
	// allocation (this workload flushes ~60 blocks per op) trips it.
	const budget = 950
	for _, tc := range []struct {
		name  string
		arena *core.Arena
	}{
		{"heap", nil},
		{"arena", core.NewArena(cfg.ArenaBytes())},
	} {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runEngineMergeArena(b, eng, images, tc.arena)
			}
		})
		if got := res.AllocsPerOp(); got > budget {
			t.Fatalf("%s merge path allocates %d allocs/op, budget is %d", tc.name, got, budget)
		} else {
			t.Logf("%s merge path: %d allocs/op (budget %d)", tc.name, got, budget)
		}
	}
}

// BenchmarkTieredVsLeveled compares the real store's write path under
// leveled and tiered (lazy) compaction on both backends — the §VII-C
// scenario that motivates the 9-input engine: tiered merges have multi-run
// fan-in only the multi-input engine can take.
func BenchmarkTieredVsLeveled(b *testing.B) {
	configs := []struct {
		name   string
		tiered bool
		engine bool
	}{
		{"leveled-cpu", false, false},
		{"leveled-fcae9", false, true},
		{"tiered-cpu", true, false},
		{"tiered-fcae9", true, true},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				opts := fcae.Options{
					MemTableBytes:      128 << 10,
					BaseLevelBytes:     512 << 10,
					MaxOutputFileBytes: 128 << 10,
				}
				if cfg.tiered {
					opts.TieredRuns = 4
				}
				if cfg.engine {
					opts.Executor = fcae.MustNewEngineExecutor(fcae.MultiInputEngineConfig())
				}
				db := benchDB(b, opts)
				keys := workload.NewKeyGen(16)
				values := workload.NewValueGen(128, 0.5, 1)
				seq := workload.NewUniform(40000, 3)
				b.StartTimer()
				for j := 0; j < 40000; j++ {
					if err := db.Put(keys.Key(seq.Next()), values.Value()); err != nil {
						b.Fatal(err)
					}
				}
				if err := db.WaitIdle(); err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					st := db.Stats()
					b.Logf("%s: compactions=%d hw=%d fallbacks=%d WA=%.2f",
						cfg.name, st.Compactions, st.HWCompactions, st.SWFallbacks, db.WriteAmplification())
				}
			}
		})
	}
}

// BenchmarkExtensions regenerates the reports for the paper's discussion
// directions: near-storage placement (§VII-E), pipeline stage utilization
// (§V-D1) and the tiered-compaction scenario (§VII-C).
func BenchmarkExtensions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ns := bench.NearStorage(benchScale)
		su := bench.StageUtilization(benchScale, bench.DefaultEngineConfig())
		ts := bench.TieredSim(benchScale)
		if i == 0 {
			logReports(b, ns, su, ts)
		}
	}
}
