// Ycsbzipf runs a YCSB-A style mixed workload (50% zipfian reads, 50%
// updates) plus range scans against the store with the FCAE backend —
// the access pattern of paper §VII-D — entirely through the public API.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"fcae"
	"fcae/internal/workload"
)

const (
	records = 50_000
	ops     = 100_000
)

func main() {
	dir, err := os.MkdirTemp("", "fcae-ycsbzipf-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := fcae.Open(dir, fcae.Options{
		Executor:      fcae.MustNewEngineExecutor(fcae.MultiInputEngineConfig()),
		MemTableBytes: 2 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	keys := workload.NewKeyGen(16)
	values := workload.NewValueGen(1024, 0.5, 3)

	// Load phase.
	loadStart := time.Now()
	for i := uint64(0); i < records; i++ {
		if err := db.Put(keys.Key(i), values.Value()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded %d records in %v\n", records, time.Since(loadStart).Round(time.Millisecond))

	// Mixed phase: 50/50 zipfian reads and updates.
	zipf := workload.NewZipfian(records, 11)
	mix := workload.NewMix(0.5, 0.5, 0, 0, 0, 13)
	var reads, writes int
	mixStart := time.Now()
	for i := 0; i < ops; i++ {
		k := keys.Key(zipf.Next())
		if mix.Next() == workload.OpRead {
			if _, err := db.Get(k); err != nil && err != fcae.ErrNotFound {
				log.Fatal(err)
			}
			reads++
		} else {
			if err := db.Put(k, values.Value()); err != nil {
				log.Fatal(err)
			}
			writes++
		}
	}
	mixElapsed := time.Since(mixStart)
	fmt.Printf("workload A: %d reads + %d writes at %.0f ops/s\n",
		reads, writes, float64(ops)/mixElapsed.Seconds())

	// Range scans (YCSB-E style).
	scanStart := time.Now()
	const scans, scanLen = 500, 50
	entries := 0
	for s := 0; s < scans; s++ {
		it, err := db.NewIterator()
		if err != nil {
			log.Fatal(err)
		}
		for ok, n := it.Seek(keys.Key(zipf.Next())), 0; ok && n < scanLen; ok, n = it.Next(), n+1 {
			entries++
		}
		if err := it.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("scans: %d x %d entries at %.0f scans/s (%d entries)\n",
		scans, scanLen, float64(scans)/time.Since(scanStart).Seconds(), entries)

	st := db.Stats()
	fmt.Printf("engine compactions: %d (kernel %v, PCIe %v)\n",
		st.HWCompactions, st.KernelTime.Round(time.Microsecond), st.TransferTime.Round(time.Microsecond))
}
