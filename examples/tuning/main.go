// Tuning walks the engine configuration space the way §VII-C does: sweep
// (N, W_in, V), estimate chip resources with the Table VII model, discard
// configurations that overflow the KCU1500, and rank the survivors by
// modeled compaction speed for a target workload. It reproduces the
// paper's conclusion that the 9-input engine must shrink to W_in=8, V=8.
package main

import (
	"fmt"
	"sort"

	"fcae"
)

type candidate struct {
	cfg   fcae.EngineConfig
	util  fcae.EngineUtilization
	speed float64
}

func main() {
	const keyLen, valueLen = 16 + 8, 512 // workload: 16 B keys + 512 B values

	fmt.Printf("workload: %dB internal keys + %dB values; chip: KCU1500\n\n", keyLen, valueLen)
	var fits, overflows []candidate
	for _, n := range []int{2, 4, 9} {
		for _, win := range []int{8, 16, 64} {
			for _, v := range []int{8, 16, 32, 64} {
				if v > win {
					continue
				}
				cfg := fcae.DefaultEngineConfig()
				cfg.N, cfg.WIn, cfg.V = n, win, v
				c := candidate{cfg: cfg, util: cfg.Resources(), speed: cfg.SpeedMBps(keyLen, valueLen)}
				if cfg.Fits() {
					fits = append(fits, c)
				} else {
					overflows = append(overflows, c)
				}
			}
		}
	}

	sort.Slice(fits, func(i, j int) bool {
		if fits[i].cfg.N != fits[j].cfg.N {
			return fits[i].cfg.N > fits[j].cfg.N // more inputs covers more jobs
		}
		return fits[i].speed > fits[j].speed
	})

	fmt.Println("configurations that fit the chip (best first):")
	fmt.Println("  N  WIn   V    LUT%   speed(MB/s)")
	for _, c := range fits {
		fmt.Printf("  %d  %3d  %2d   %5.1f   %8.1f\n",
			c.cfg.N, c.cfg.WIn, c.cfg.V, c.util.LUT, c.speed)
	}
	fmt.Printf("\n%d configurations overflow the chip, e.g.:\n", len(overflows))
	for i, c := range overflows {
		if i == 3 {
			break
		}
		fmt.Printf("  N=%d WIn=%d V=%d -> %.0f%% LUT\n", c.cfg.N, c.cfg.WIn, c.cfg.V, c.util.LUT)
	}

	best := fits[0]
	fmt.Printf("\nchosen: N=%d WIn=%d V=%d (paper §VII-C picks N=9, WIn=8, V=8)\n",
		best.cfg.N, best.cfg.WIn, best.cfg.V)

	// MaxFittingV answers the same question directly for a given (N, WIn).
	probe := fcae.DefaultEngineConfig()
	probe.N, probe.WIn = 9, 8
	fmt.Printf("MaxFittingV(N=9, WIn=8) = %d\n", probe.MaxFittingV())
}
