// Writeheavy demonstrates the paper's motivating scenario: a
// write-intensive workload whose compactions are offloaded to the FCAE
// engine (paper §I: "compaction ... could significantly reduce the overall
// throughput of the whole system especially for write-intensive
// workloads"). It runs the same load on the CPU baseline and the 9-input
// engine backend and prints the compaction statistics, including the
// engine's modeled kernel and PCIe time.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"fcae"
	"fcae/internal/workload"
)

const (
	numOps    = 200_000
	valueSize = 256
)

func main() {
	fmt.Printf("write-heavy load: %d ops x (16B key + %dB value)\n\n", numOps, valueSize)
	run("cpu baseline", fcae.Options{})

	cfg := fcae.MultiInputEngineConfig() // N=9: covers L0 merges too
	u := cfg.Resources()
	fmt.Printf("engine config: N=%d V=%d WIn=%d (BRAM %.0f%%, FF %.0f%%, LUT %.0f%%)\n",
		cfg.N, cfg.V, cfg.WIn, u.BRAM, u.FF, u.LUT)
	run("fcae engine", fcae.Options{Executor: fcae.MustNewEngineExecutor(cfg)})
}

func run(label string, opts fcae.Options) {
	dir, err := os.MkdirTemp("", "fcae-writeheavy-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Small thresholds so the run compacts visibly.
	opts.MemTableBytes = 1 << 20
	opts.BaseLevelBytes = 4 << 20
	opts.MaxOutputFileBytes = 1 << 20

	db, err := fcae.Open(dir, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	keys := workload.NewKeyGen(16)
	values := workload.NewValueGen(valueSize, 0.5, 1)
	seq := workload.NewUniform(numOps, 2)

	start := time.Now()
	for i := 0; i < numOps; i++ {
		if err := db.Put(keys.Key(seq.Next()), values.Value()); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.WaitIdle(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	st := db.Stats()
	fmt.Printf("%s:\n", label)
	fmt.Printf("  wall time          %v (%.0f ops/s)\n", elapsed.Round(time.Millisecond), float64(numOps)/elapsed.Seconds())
	fmt.Printf("  flushes            %d (%.1f MiB)\n", st.Flushes, float64(st.FlushBytes)/(1<<20))
	fmt.Printf("  compactions        %d (engine %d, sw fallback %d, trivial moves %d)\n",
		st.Compactions, st.HWCompactions, st.SWFallbacks, st.TrivialMoves)
	fmt.Printf("  compaction I/O     read %.1f MiB, wrote %.1f MiB\n",
		float64(st.CompactionRead)/(1<<20), float64(st.CompactionWrite)/(1<<20))
	if st.HWCompactions > 0 {
		fmt.Printf("  modeled device     kernel %v, PCIe %v  (what the KCU1500 would spend)\n",
			st.KernelTime.Round(time.Microsecond), st.TransferTime.Round(time.Microsecond))
	}
	fmt.Printf("  write stalls       %v across %d waits\n\n", st.StallTime.Round(time.Millisecond), st.StallWrites)
}
