// Server example: run the network KV service in-process, drive it with
// the pipelined client, and scrape the admin plane — the same wiring
// `cmd/fcaeserver` and `cmd/ycsb -addr` use across processes.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"fcae"
)

func main() {
	dir, err := os.MkdirTemp("", "fcae-server-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Ephemeral ports keep the example self-contained; a real
	// deployment sets fixed addresses (see cmd/fcaeserver).
	// A short commit window lets concurrent writes coalesce into shared
	// store commits at the cost of up to that much added write latency.
	srv, err := fcae.OpenServer(dir, fcae.Options{}, fcae.ServerConfig{
		Addr:         "127.0.0.1:0",
		AdminAddr:    "127.0.0.1:0",
		CommitWindow: 2 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	cl, err := fcae.DialServer(fcae.ClientOptions{
		Addr:        srv.Addr().String(),
		Conns:       2,
		MaxPipeline: 128,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Point ops over the wire.
	if err := cl.Put([]byte("city:hongkong"), []byte("7.4M")); err != nil {
		log.Fatal(err)
	}
	v, err := cl.Get([]byte("city:hongkong"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city:hongkong = %s\n", v)

	// An atomic batch travels as one WRITE frame and one store commit.
	var batch fcae.ClientBatch
	batch.Put([]byte("city:tokyo"), []byte("13.9M"))
	batch.Put([]byte("city:delhi"), []byte("31.2M"))
	if err := cl.Write(&batch); err != nil {
		log.Fatal(err)
	}

	// Concurrent writers coalesce: the server's group-commit window
	// merges these 64 puts into far fewer store commits.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				key := fmt.Sprintf("bulk:%d:%d", w, i)
				if err := cl.Put([]byte(key), []byte("x")); err != nil {
					log.Printf("put %s: %v", key, err)
				}
			}
		}(w)
	}
	wg.Wait()

	// Range scans stream back as one response frame.
	kvs, err := cl.Scan([]byte("city:"), 10)
	if err != nil {
		log.Fatal(err)
	}
	for _, kv := range kvs {
		fmt.Printf("scan: %s = %s\n", kv.Key, kv.Value)
	}

	// The admin plane serves liveness and the full metrics snapshot —
	// store counters and server counters in one registry.
	resp, err := http.Get("http://" + srv.AdminAddr().String() + "/metrics?format=text")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		for _, want := range []string{"server_requests ", "server_group_commits ", "server_grouped_writes "} {
			if strings.HasPrefix(line, want) {
				fmt.Println(line)
			}
		}
	}

	if err := cl.Close(); err != nil {
		log.Fatal(err)
	}
	// Close drains: stops accepting, finishes in-flight requests,
	// flushes the write queue, then closes the store.
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained and closed")
}
