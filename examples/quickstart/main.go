// Quickstart: open a store, write, read, batch, snapshot and iterate
// through the public API.
package main

import (
	"fmt"
	"log"
	"os"

	"fcae"
)

func main() {
	dir, err := os.MkdirTemp("", "fcae-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The zero Options select the paper's defaults (Table IV) and the
	// software compactor; see examples/writeheavy for the FCAE backend.
	db, err := fcae.Open(dir, fcae.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Point writes and reads.
	if err := db.Put([]byte("city:hongkong"), []byte("7.4M")); err != nil {
		log.Fatal(err)
	}
	v, err := db.Get([]byte("city:hongkong"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city:hongkong = %s\n", v)

	// Atomic batches.
	var batch fcae.Batch
	batch.Put([]byte("city:tokyo"), []byte("13.9M"))
	batch.Put([]byte("city:london"), []byte("8.9M"))
	batch.Delete([]byte("city:hongkong"))
	if err := db.Write(&batch); err != nil {
		log.Fatal(err)
	}

	// Snapshots give a consistent view across later writes.
	snap := db.NewSnapshot()
	defer snap.Release()
	if err := db.Put([]byte("city:tokyo"), []byte("14.0M")); err != nil {
		log.Fatal(err)
	}
	old, _ := snap.Get([]byte("city:tokyo"))
	cur, _ := db.Get([]byte("city:tokyo"))
	fmt.Printf("tokyo: snapshot=%s current=%s\n", old, cur)

	// Ordered iteration over user keys.
	it, err := db.NewIterator()
	if err != nil {
		log.Fatal(err)
	}
	defer it.Close()
	fmt.Println("scan:")
	for ok := it.Seek([]byte("city:")); ok; ok = it.Next() {
		fmt.Printf("  %s = %s\n", it.Key(), it.Value())
	}
	if err := it.Error(); err != nil {
		log.Fatal(err)
	}
}
