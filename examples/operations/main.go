// Operations demonstrates the store's operational toolkit: consistent
// checkpoints, metadata repair after corruption, properties output, and
// approximate sizes — the pieces a downstream operator relies on.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"fcae"
	"fcae/internal/workload"
)

func main() {
	root, err := os.MkdirTemp("", "fcae-operations-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	dir := filepath.Join(root, "db")

	db, err := fcae.Open(dir, fcae.Options{
		Executor:      fcae.MustNewEngineExecutor(fcae.MultiInputEngineConfig()),
		MemTableBytes: 1 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	keys := workload.NewKeyGen(16)
	values := workload.NewValueGen(256, 0.5, 1)
	seq := workload.NewUniform(30_000, 7) // overlapping ranges: real merges
	for i := 0; i < 30_000; i++ {
		if err := db.Put(keys.Key(seq.Next()), values.Value()); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.WaitIdle(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== store shape ==")
	fmt.Print(db.PropertyString())
	// KeyGen reuses its buffer, so bounds passed together must be copied.
	lo := append([]byte(nil), keys.Key(0)...)
	hi := append([]byte(nil), keys.Key(15_000)...)
	fmt.Printf("approximate size of first half: %.1f MiB\n\n",
		float64(db.ApproximateSize(lo, hi))/(1<<20))

	// A sentinel key to verify recovery paths below.
	if err := db.Put([]byte("sentinel"), []byte("intact")); err != nil {
		log.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}

	// Consistent online backup.
	checkpoint := filepath.Join(root, "backup")
	if err := db.Checkpoint(checkpoint); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint written to %s\n", checkpoint)
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}

	// Disaster: the MANIFEST and CURRENT files are destroyed.
	os.Remove(filepath.Join(dir, "CURRENT"))
	matches, _ := filepath.Glob(filepath.Join(dir, "MANIFEST-*"))
	for _, m := range matches {
		os.Remove(m)
	}
	fmt.Println("metadata destroyed; repairing from table files...")
	if err := fcae.Repair(dir, fcae.Options{}); err != nil {
		log.Fatal(err)
	}

	repaired, err := fcae.Open(dir, fcae.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer repaired.Close()
	if v, err := repaired.Get([]byte("sentinel")); err != nil || string(v) != "intact" {
		log.Fatalf("repaired store lost the sentinel: %v", err)
	}
	fmt.Println("repair ok: data readable again")

	// The checkpoint is an independent, openable store.
	backup, err := fcae.Open(checkpoint, fcae.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer backup.Close()
	if v, err := backup.Get([]byte("sentinel")); err != nil || string(v) != "intact" {
		log.Fatalf("backup lost the sentinel: %v", err)
	}
	fmt.Println("backup ok: checkpoint opens and serves reads")
}
